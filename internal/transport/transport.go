// Package transport provides the live message-passing layer of the runtime:
// point-to-point float64-vector messages between ranks, over either an
// in-process channel mesh (one address space, as in the tests and examples)
// or TCP sockets (stdlib net, length-prefixed binary frames), mirroring the
// prototype's Gloo/TCP split (§4). Collectives in internal/collective are
// built on this interface.
//
// Failure model: a peer can crash (fail-stop). Peer loss is isolated — only
// operations involving that peer fail, with a typed *PeerDownError; traffic
// between surviving ranks continues. Endpoints optionally implement
// PeerFailer (declare a peer dead / revive it) and OpAborter (abort one
// collective operation), which the live runtime's recovery path uses, and
// the Faulty wrapper injects deterministic crashes, drops, and delays for
// tests and experiments.
package transport

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"partialreduce/internal/bufpool"
)

// Transport is a rank's endpoint in a fixed-size communication world.
// Sends are asynchronous (buffered); Recv blocks until a message with the
// requested source and tag arrives. A (from, tag) pair identifies at most
// one outstanding message at a time, which the collectives guarantee by
// deriving tags from (operation id, phase, step).
type Transport interface {
	// Rank returns this endpoint's id in [0, Size).
	Rank() int
	// Size returns the number of ranks in the world.
	Size() int
	// Send delivers payload to rank to with the given tag. The payload is
	// copied before Send returns; the caller may reuse it.
	Send(to int, tag uint64, payload []float64) error
	// Recv blocks until a message from rank from with the given tag arrives
	// and returns its payload. The returned slice is owned by the caller.
	Recv(from int, tag uint64) ([]float64, error)
	// RecvInto blocks like Recv but copies the payload into dst, returning
	// the element count. It is the zero-allocation receive: the transport's
	// internal buffer is recycled instead of escaping to the caller. If the
	// payload is longer than dst, RecvInto fails with an error matching
	// ErrShortBuffer (the message is consumed — a length mismatch is a
	// protocol bug, not a retryable condition). n may be smaller than
	// len(dst); dst[n:] is untouched.
	RecvInto(from int, tag uint64, dst []float64) (int, error)
	// Close releases the endpoint. Pending Recvs fail.
	Close() error
}

// PeerFailer is implemented by endpoints that support per-peer failure
// isolation: FailPeer declares a peer dead (pending and future operations
// involving it fail with *PeerDownError; everything else keeps working), and
// RevivePeer re-admits it after a checkpoint-based rejoin.
type PeerFailer interface {
	FailPeer(peer int)
	RevivePeer(peer int)
}

// OpAborter is implemented by endpoints that can abort a single collective
// operation: pending and future Recvs whose tag belongs to op fail with
// *OpAbortedError. The live runtime uses it to unblock every member of a
// group whose collective lost a participant.
type OpAborter interface {
	AbortOp(op uint32)
}

// DeadlineRecver is implemented by endpoints whose receives can be bounded
// by a deadline: RecvIntoTimeout behaves like RecvInto but fails with a
// *TimeoutError (matching ErrTimeout) if no message arrives within timeout.
// A timeout consumes nothing — the message, should it arrive later, stays
// deliverable. timeout <= 0 means no deadline (identical to RecvInto).
//
// Deadlines are what turn a severed link or a partition from an eternal hang
// into a recoverable error: every blocking wait in the runtime is bounded by
// one, and the retry/abort machinery above decides what to do next.
type DeadlineRecver interface {
	RecvIntoTimeout(from int, tag uint64, dst []float64, timeout time.Duration) (int, error)
}

// OpPurger is implemented by endpoints that can discard buffered frames of a
// collective operation without poisoning future receives (unlike OpAborter).
// The retry machinery uses it between attempts: frames from a timed-out
// attempt's stale tag epoch are dropped so they cannot alias a later one.
type OpPurger interface {
	PurgeOp(op uint32)
}

// RecvIntoDeadline is the package-level deadline receive: it uses
// DeadlineRecver when the endpoint supports it and timeout > 0, and falls
// back to a plain (unbounded) RecvInto otherwise.
func RecvIntoDeadline(t Transport, from int, tag uint64, dst []float64, timeout time.Duration) (int, error) {
	if timeout > 0 {
		if dr, ok := t.(DeadlineRecver); ok {
			return dr.RecvIntoTimeout(from, tag, dst, timeout)
		}
	}
	return t.RecvInto(from, tag, dst)
}

// PurgeOpAt discards op's buffered frames at t when supported (no-op
// otherwise).
func PurgeOpAt(t Transport, op uint32) {
	if op2, ok := t.(OpPurger); ok {
		op2.PurgeOp(op)
	}
}

// SelfFailer lets an endpoint simulate its own fail-stop crash without
// tearing down the process: after FailSelf, every peer observes this rank as
// down (exactly as if its process had exited and its connections broken),
// and the endpoint's own pending and future operations fail with
// *PeerDownError. Fault-injection harnesses use it to kill one rank of an
// in-process world.
type SelfFailer interface {
	FailSelf()
}

// ErrClosed is returned by operations on a closed transport.
var ErrClosed = errors.New("transport: closed")

// ErrPeerDown matches (via errors.Is) any *PeerDownError.
var ErrPeerDown = errors.New("transport: peer down")

// ErrOpAborted matches (via errors.Is) any *OpAbortedError.
var ErrOpAborted = errors.New("transport: operation aborted")

// ErrShortBuffer is returned (wrapped) by RecvInto when the incoming payload
// does not fit the destination buffer.
var ErrShortBuffer = errors.New("transport: short receive buffer")

// ErrTimeout matches (via errors.Is) any *TimeoutError.
var ErrTimeout = errors.New("transport: receive timed out")

// TimeoutError reports that a deadline-bounded receive expired before the
// message arrived — the symptom of a severed link, a partition, or a peer
// stalled past the deadline. Nothing was consumed; the receive may be retried.
type TimeoutError struct {
	Peer    int
	Tag     uint64
	Timeout time.Duration
}

// Error implements error.
func (e *TimeoutError) Error() string {
	return fmt.Sprintf("transport: receive from %d tag %#x timed out after %s", e.Peer, e.Tag, e.Timeout)
}

// Is reports equivalence to the ErrTimeout sentinel.
func (e *TimeoutError) Is(target error) bool { return target == ErrTimeout }

// PeerDownError reports that one specific peer crashed or was declared dead.
// Only operations involving that peer fail; the rest of the world is usable.
type PeerDownError struct{ Peer int }

// Error implements error.
func (e *PeerDownError) Error() string {
	return fmt.Sprintf("transport: peer %d down", e.Peer)
}

// Is reports equivalence to the ErrPeerDown sentinel.
func (e *PeerDownError) Is(target error) bool { return target == ErrPeerDown }

// OpAbortedError reports that a collective operation was aborted, typically
// because a group member died mid-collective. Dead is the rank whose failure
// triggered the abort (-1 when unknown).
type OpAbortedError struct {
	Op   uint32
	Dead int
}

// Error implements error.
func (e *OpAbortedError) Error() string {
	return fmt.Sprintf("transport: op %d aborted (peer %d down)", e.Op, e.Dead)
}

// Is reports equivalence to the ErrOpAborted sentinel.
func (e *OpAbortedError) Is(target error) bool { return target == ErrOpAborted }

// IsFailure reports whether err is a recoverable group failure: a dead peer,
// an aborted collective, or a timed-out receive, as opposed to a closed
// transport or a protocol error.
func IsFailure(err error) bool {
	return errors.Is(err, ErrPeerDown) || errors.Is(err, ErrOpAborted) || errors.Is(err, ErrTimeout)
}

// IsTimeout reports whether err is (or wraps) a receive timeout.
func IsTimeout(err error) bool { return errors.Is(err, ErrTimeout) }

// opOf extracts the collective operation id from a tag (the layout of
// internal/collective: op<<24 | phase<<16 | step).
func opOf(tag uint64) uint64 { return tag >> 24 }

type message struct {
	from    int
	tag     uint64
	payload []float64
}

type key struct {
	from int
	tag  uint64
}

// recvResult completes a blocked receive: n elements copied (into mode) or
// the payload handed off (plain mode), or an error.
type recvResult struct {
	payload []float64
	n       int
	err     error
}

// waiter is one blocked receive. In into mode (dst non-nil or into set), the
// delivering goroutine copies the payload into dst and recycles the internal
// buffer; in plain mode the buffer is handed off to the receiver. Waiters are
// pooled: a ring step's receive must not allocate.
type waiter struct {
	dst  []float64
	into bool
	ch   chan recvResult
}

var waiterPool = sync.Pool{New: func() any { return &waiter{ch: make(chan recvResult, 1)} }}

// mailbox matches incoming messages to waiting receivers, with per-peer
// failure isolation and per-operation aborts. Pending payload buffers are
// pool-owned (bufpool); they are recycled when consumed by an into-receive or
// dropped by failure paths, and handed off (leaving the pool's custody) when
// consumed by a plain receive.
type mailbox struct {
	mu      sync.Mutex
	pending map[key][]float64
	waiters map[key]*waiter
	down    map[int]bool
	aborted map[uint64]int // op id -> dead rank that caused the abort
	closed  bool
	dead    int // >= 0: the owning rank failed itself (fail-stop crash)
}

func newMailbox() *mailbox {
	return &mailbox{
		pending: make(map[key][]float64),
		waiters: make(map[key]*waiter),
		down:    make(map[int]bool),
		aborted: make(map[uint64]int),
		dead:    -1,
	}
}

// complete resolves waiter w with msg's payload, copying in into mode (and
// recycling the buffer) or handing the buffer off in plain mode.
func (w *waiter) complete(payload []float64) {
	if !w.into {
		w.ch <- recvResult{payload: payload}
		return
	}
	if len(payload) > len(w.dst) {
		bufpool.PutFloat64(payload)
		w.ch <- recvResult{err: fmt.Errorf("%w: payload %d into %d", ErrShortBuffer, len(payload), len(w.dst))}
		return
	}
	n := copy(w.dst, payload)
	bufpool.PutFloat64(payload)
	w.ch <- recvResult{n: n}
}

// deliverDirect attempts to complete a blocked into-mode receive straight
// from the sender's payload, skipping the intermediate pooled copy — the
// common case on a pipelined ring, where the receiver is already parked in
// RecvInto by the time the matching Send runs. It returns handled=true when
// the message was consumed (or terminally rejected); handled=false means no
// into-waiter was parked and the caller must fall back to deliver.
//
// The copy into w.dst happens after m.mu is released: removing w from
// m.waiters under the lock makes this goroutine the only one that can
// complete it, and the receiver cannot touch dst until the channel send
// publishes the result.
func (m *mailbox) deliverDirect(from int, tag uint64, payload []float64) (bool, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return true, ErrClosed
	}
	if m.dead >= 0 {
		m.mu.Unlock()
		return true, &PeerDownError{Peer: m.dead}
	}
	if m.down[from] {
		m.mu.Unlock()
		return true, &PeerDownError{Peer: from}
	}
	k := key{from: from, tag: tag}
	w, ok := m.waiters[k]
	if !ok || !w.into {
		m.mu.Unlock()
		return false, nil
	}
	delete(m.waiters, k)
	m.mu.Unlock()

	if len(payload) > len(w.dst) {
		w.ch <- recvResult{err: fmt.Errorf("%w: payload %d into %d", ErrShortBuffer, len(payload), len(w.dst))}
		return true, nil
	}
	n := copy(w.dst, payload)
	w.ch <- recvResult{n: n}
	return true, nil
}

// deliver takes ownership of msg.payload (a pooled buffer) unless it returns
// an error, in which case the caller keeps it.
func (m *mailbox) deliver(msg message) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if m.dead >= 0 {
		// The owning rank crashed: senders see it down.
		return &PeerDownError{Peer: m.dead}
	}
	if m.down[msg.from] {
		// The receiver considers the sender dead; drop the message and tell
		// the sender (a rejoining worker must be revived first).
		return &PeerDownError{Peer: msg.from}
	}
	if _, gone := m.aborted[opOf(msg.tag)]; gone {
		// The frame belongs to an aborted collective: a straggler from a
		// failed attempt. Drop it instead of parking it in pending forever.
		bufpool.PutFloat64(msg.payload)
		return nil
	}
	k := key{from: msg.from, tag: msg.tag}
	if w, ok := m.waiters[k]; ok {
		delete(m.waiters, k)
		w.complete(msg.payload)
		return nil
	}
	if _, dup := m.pending[k]; dup {
		return fmt.Errorf("transport: duplicate message from %d tag %d", msg.from, msg.tag)
	}
	m.pending[k] = msg.payload
	return nil
}

// receiveWait registers a pooled waiter for (from, tag) in into or plain
// mode, blocks for the result, and recycles the waiter.
func (m *mailbox) receiveWait(k key, dst []float64, into bool) recvResult {
	w := waiterPool.Get().(*waiter)
	w.dst, w.into = dst, into
	m.waiters[k] = w
	m.mu.Unlock()

	r := <-w.ch
	w.dst = nil
	waiterPool.Put(w)
	return r
}

// checkReceivable reports (under m.mu) whether a receive from (from, tag)
// can proceed, failing fast on closed/aborted/down states.
func (m *mailbox) checkReceivable(from int, tag uint64) error {
	if m.closed {
		return ErrClosed
	}
	if dead, ok := m.aborted[opOf(tag)]; ok {
		return &OpAbortedError{Op: uint32(opOf(tag)), Dead: dead}
	}
	if m.down[from] {
		return &PeerDownError{Peer: from}
	}
	return nil
}

func (m *mailbox) receive(from int, tag uint64) ([]float64, error) {
	k := key{from: from, tag: tag}
	m.mu.Lock()
	if err := m.checkReceivable(from, tag); err != nil {
		m.mu.Unlock()
		return nil, err
	}
	if p, ok := m.pending[k]; ok {
		delete(m.pending, k)
		m.mu.Unlock()
		return p, nil // buffer ownership passes to the caller
	}
	r := m.receiveWait(k, nil, false) // unlocks m.mu
	return r.payload, r.err
}

func (m *mailbox) receiveInto(from int, tag uint64, dst []float64) (int, error) {
	k := key{from: from, tag: tag}
	m.mu.Lock()
	if err := m.checkReceivable(from, tag); err != nil {
		m.mu.Unlock()
		return 0, err
	}
	if p, ok := m.pending[k]; ok {
		delete(m.pending, k)
		m.mu.Unlock()
		if len(p) > len(dst) {
			bufpool.PutFloat64(p)
			return 0, fmt.Errorf("%w: payload %d into %d", ErrShortBuffer, len(p), len(dst))
		}
		n := copy(dst, p)
		bufpool.PutFloat64(p)
		return n, nil
	}
	r := m.receiveWait(k, dst, true) // unlocks m.mu
	return r.n, r.err
}

// receiveIntoDeadline is receiveInto bounded by timeout. On expiry the waiter
// is withdrawn under the lock; if a deliverer got to it first, the delivery
// wins and the receive completes normally. A timeout consumes nothing.
func (m *mailbox) receiveIntoDeadline(from int, tag uint64, dst []float64, timeout time.Duration) (int, error) {
	k := key{from: from, tag: tag}
	m.mu.Lock()
	if err := m.checkReceivable(from, tag); err != nil {
		m.mu.Unlock()
		return 0, err
	}
	if p, ok := m.pending[k]; ok {
		delete(m.pending, k)
		m.mu.Unlock()
		if len(p) > len(dst) {
			bufpool.PutFloat64(p)
			return 0, fmt.Errorf("%w: payload %d into %d", ErrShortBuffer, len(p), len(dst))
		}
		n := copy(dst, p)
		bufpool.PutFloat64(p)
		return n, nil
	}

	w := waiterPool.Get().(*waiter)
	w.dst, w.into = dst, true
	m.waiters[k] = w
	m.mu.Unlock()

	timer := time.NewTimer(timeout)
	var r recvResult
	select {
	case r = <-w.ch:
		timer.Stop()
	case <-timer.C:
		m.mu.Lock()
		if cur, ok := m.waiters[k]; ok && cur == w {
			// Still parked: withdraw it. We own the waiter again.
			delete(m.waiters, k)
			m.mu.Unlock()
			w.dst = nil
			waiterPool.Put(w)
			return 0, &TimeoutError{Peer: from, Tag: tag, Timeout: timeout}
		}
		// A deliverer (or failure path) already claimed the waiter; its
		// result is in flight on w.ch. Accept it — the message was consumed.
		m.mu.Unlock()
		r = <-w.ch
	}
	w.dst = nil
	waiterPool.Put(w)
	return r.n, r.err
}

// failPeer marks peer dead: queued messages from it are dropped and blocked
// receives targeting it fail with *PeerDownError. Idempotent.
func (m *mailbox) failPeer(peer int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed || m.down[peer] {
		return
	}
	m.down[peer] = true
	for k, p := range m.pending {
		if k.from == peer {
			delete(m.pending, k)
			bufpool.PutFloat64(p)
		}
	}
	for k, w := range m.waiters {
		if k.from == peer {
			delete(m.waiters, k)
			w.ch <- recvResult{err: &PeerDownError{Peer: peer}}
		}
	}
}

// revivePeer clears peer's down mark after a rejoin.
func (m *mailbox) revivePeer(peer int) {
	m.mu.Lock()
	delete(m.down, peer)
	m.mu.Unlock()
}

// abortOp fails pending and future receives belonging to collective op.
func (m *mailbox) abortOp(op uint32, dead int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	if _, done := m.aborted[uint64(op)]; done {
		return
	}
	m.aborted[uint64(op)] = dead
	for k, p := range m.pending {
		if opOf(k.tag) == uint64(op) {
			delete(m.pending, k)
			bufpool.PutFloat64(p)
		}
	}
	for k, w := range m.waiters {
		if opOf(k.tag) == uint64(op) {
			delete(m.waiters, k)
			w.ch <- recvResult{err: &OpAbortedError{Op: op, Dead: dead}}
		}
	}
}

// purgeOp drops buffered frames belonging to collective op without marking
// the op aborted: future receives still work. Used between retry attempts to
// clear stale-epoch stragglers.
func (m *mailbox) purgeOp(op uint32) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	for k, p := range m.pending {
		if opOf(k.tag) == uint64(op) {
			delete(m.pending, k)
			bufpool.PutFloat64(p)
		}
	}
}

func (m *mailbox) close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.closed = true
	for k, w := range m.waiters {
		delete(m.waiters, k)
		w.ch <- recvResult{err: ErrClosed}
	}
	for k, p := range m.pending {
		delete(m.pending, k)
		bufpool.PutFloat64(p)
	}
}

// FailPeerEverywhere declares dead crashed at every other endpoint of an
// in-process world that supports per-peer failure isolation.
func FailPeerEverywhere(world []Transport, dead int) {
	for i, t := range world {
		if i == dead || t == nil {
			continue
		}
		if pf, ok := t.(PeerFailer); ok {
			pf.FailPeer(dead)
		}
	}
}

// RevivePeerEverywhere re-admits peer at every other endpoint (rejoin).
func RevivePeerEverywhere(world []Transport, peer int) {
	for i, t := range world {
		if i == peer || t == nil {
			continue
		}
		if pf, ok := t.(PeerFailer); ok {
			pf.RevivePeer(peer)
		}
	}
}

// AbortOpEverywhere aborts collective op at the endpoints of members (dead is
// the rank whose loss triggered the abort).
func AbortOpEverywhere(world []Transport, members []int, op uint32, dead int) {
	for _, m := range members {
		if m == dead || m < 0 || m >= len(world) || world[m] == nil {
			continue
		}
		if oa, ok := world[m].(OpAborter); ok {
			oa.AbortOp(op)
		}
	}
}

// Mem is an in-process transport world: NewMem returns one endpoint per
// rank, all sharing one delivery fabric. Endpoints are safe for concurrent
// use by multiple goroutines.
type Mem struct {
	rank  int
	world []*mailbox
}

// NewMem creates an n-rank in-process world.
func NewMem(n int) []*Mem {
	if n < 1 {
		panic(fmt.Sprintf("transport: world size %d", n))
	}
	boxes := make([]*mailbox, n)
	for i := range boxes {
		boxes[i] = newMailbox()
	}
	eps := make([]*Mem, n)
	for i := range eps {
		eps[i] = &Mem{rank: i, world: boxes}
	}
	return eps
}

// Rank implements Transport.
func (m *Mem) Rank() int { return m.rank }

// Size implements Transport.
func (m *Mem) Size() int { return len(m.world) }

// Send implements Transport. The payload is copied into a pooled buffer, so
// steady-state traffic allocates nothing.
func (m *Mem) Send(to int, tag uint64, payload []float64) error {
	if to < 0 || to >= len(m.world) {
		return fmt.Errorf("transport: rank %d out of range", to)
	}
	box := m.world[to]
	if handled, err := box.deliverDirect(m.rank, tag, payload); handled {
		return err
	}
	cp := bufpool.GetFloat64(len(payload))
	copy(cp, payload)
	if err := box.deliver(message{from: m.rank, tag: tag, payload: cp}); err != nil {
		bufpool.PutFloat64(cp)
		return err
	}
	return nil
}

// Recv implements Transport. The returned buffer leaves the pool's custody
// (the caller owns it); prefer RecvInto on hot paths.
func (m *Mem) Recv(from int, tag uint64) ([]float64, error) {
	if from < 0 || from >= len(m.world) {
		return nil, fmt.Errorf("transport: rank %d out of range", from)
	}
	return m.world[m.rank].receive(from, tag)
}

// RecvInto implements Transport: the payload is copied into dst and the
// internal buffer recycled — the zero-allocation receive.
func (m *Mem) RecvInto(from int, tag uint64, dst []float64) (int, error) {
	if from < 0 || from >= len(m.world) {
		return 0, fmt.Errorf("transport: rank %d out of range", from)
	}
	return m.world[m.rank].receiveInto(from, tag, dst)
}

// RecvIntoTimeout implements DeadlineRecver.
func (m *Mem) RecvIntoTimeout(from int, tag uint64, dst []float64, timeout time.Duration) (int, error) {
	if from < 0 || from >= len(m.world) {
		return 0, fmt.Errorf("transport: rank %d out of range", from)
	}
	if timeout <= 0 {
		return m.world[m.rank].receiveInto(from, tag, dst)
	}
	return m.world[m.rank].receiveIntoDeadline(from, tag, dst, timeout)
}

// PurgeOp implements OpPurger.
func (m *Mem) PurgeOp(op uint32) { m.world[m.rank].purgeOp(op) }

// FailPeer implements PeerFailer: this endpoint treats peer as crashed.
func (m *Mem) FailPeer(peer int) {
	if peer >= 0 && peer < len(m.world) {
		m.world[m.rank].failPeer(peer)
	}
}

// RevivePeer implements PeerFailer.
func (m *Mem) RevivePeer(peer int) {
	if peer >= 0 && peer < len(m.world) {
		m.world[m.rank].revivePeer(peer)
	}
}

// AbortOp implements OpAborter.
func (m *Mem) AbortOp(op uint32) { m.world[m.rank].abortOp(op, -1) }

// FailSelf implements SelfFailer: every peer sees this rank as down, and
// this rank sees every peer as down — the in-process equivalent of the
// process exiting and all its connections breaking.
func (m *Mem) FailSelf() {
	own := m.world[m.rank]
	own.mu.Lock()
	if own.dead < 0 {
		own.dead = m.rank
	}
	own.mu.Unlock()
	for r, box := range m.world {
		if r == m.rank {
			continue
		}
		box.failPeer(m.rank)
		own.failPeer(r)
	}
}

// Close implements Transport. It closes only this endpoint's mailbox.
func (m *Mem) Close() error {
	m.world[m.rank].close()
	return nil
}
