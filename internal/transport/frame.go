package transport

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Wire frame layout (little-endian): 8-byte tag, 4-byte element count,
// 4-byte CRC32-Castagnoli of the payload bytes, then count float64 payload
// words. The count bound protects the reader from hostile allocations; the
// payload CRC protects the math from silent bit rot — a flipped payload bit
// would otherwise aggregate a corrupt gradient into every member of a
// group. A frame whose tag is hbTag and whose count is zero is a heartbeat;
// it refreshes peer liveness and is never delivered.
const (
	frameHeaderSize = 16
	// hbTag marks heartbeat frames. Collective tags are op<<24|phase<<16|step
	// with a uint32 op, and control-plane tags use the 0xC0-0xC5 prefixes;
	// neither can ever equal ^uint64(0).
	hbTag = ^uint64(0)
	// DefaultMaxFrameElems bounds the element count a decoder accepts
	// (128 MiB of payload). The wire field is attacker/corruption-controlled:
	// without a bound, a flipped bit in the count field makes the reader
	// allocate up to 32 GiB.
	DefaultMaxFrameElems = 1 << 24
)

// frameCRCTable is the Castagnoli polynomial — hardware-accelerated on
// amd64/arm64, and detects all single- and double-bit payload errors.
var frameCRCTable = crc32.MakeTable(crc32.Castagnoli)

// putFrameHeader writes tag, count, and payload checksum into hdr
// (len >= frameHeaderSize).
func putFrameHeader(hdr []byte, tag uint64, count, crc uint32) {
	binary.LittleEndian.PutUint64(hdr[0:8], tag)
	binary.LittleEndian.PutUint32(hdr[8:12], count)
	binary.LittleEndian.PutUint32(hdr[12:16], crc)
}

// parseFrameHeader reads tag, count, and payload checksum back out of hdr.
func parseFrameHeader(hdr []byte) (tag uint64, count, crc uint32) {
	return binary.LittleEndian.Uint64(hdr[0:8]),
		binary.LittleEndian.Uint32(hdr[8:12]),
		binary.LittleEndian.Uint32(hdr[12:16])
}

// EncodeFrameInto appends one encoded frame to dst and returns the extended
// slice (append semantics: the result may share dst's backing array). The
// payload CRC is computed over the appended payload bytes and patched into
// the header afterwards, so the hot path makes no extra pass buffer.
// Callers on the hot path pass a pooled buffer with sufficient capacity —
// bufpool.GetBytes(FrameLen(payload))[:0] — so no allocation occurs.
func EncodeFrameInto(dst []byte, tag uint64, payload []float64) []byte {
	start := len(dst)
	dst = binary.LittleEndian.AppendUint64(dst, tag)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, 0) // CRC placeholder
	for _, v := range payload {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	crc := crc32.Checksum(dst[start+frameHeaderSize:], frameCRCTable)
	binary.LittleEndian.PutUint32(dst[start+12:start+16], crc)
	return dst
}

// FrameLen returns the encoded size of a frame carrying payload.
func FrameLen(payload []float64) int { return frameHeaderSize + 8*len(payload) }

// EncodeFrame serializes one frame into a fresh buffer. Exported for the
// codec fuzz tests; the transport's send path uses EncodeFrameInto with a
// pooled buffer instead.
func EncodeFrame(tag uint64, payload []float64) []byte {
	return EncodeFrameInto(make([]byte, 0, FrameLen(payload)), tag, payload)
}

// DecodeFrame parses one frame produced by EncodeFrame, enforcing maxElems
// (<=0 selects DefaultMaxFrameElems), exact framing, and the payload
// checksum. Exported for the codec fuzz tests.
func DecodeFrame(buf []byte, maxElems int) (tag uint64, payload []float64, err error) {
	if maxElems <= 0 {
		maxElems = DefaultMaxFrameElems
	}
	if len(buf) < frameHeaderSize {
		return 0, nil, fmt.Errorf("transport: short frame (%d bytes)", len(buf))
	}
	tag, count, crc := parseFrameHeader(buf)
	if err := checkFrameCount(count, maxElems); err != nil {
		return 0, nil, err
	}
	body := buf[frameHeaderSize:]
	if len(body) != 8*int(count) {
		return 0, nil, fmt.Errorf("transport: frame body %d bytes for count %d", len(body), count)
	}
	if err := checkFrameCRC(body, crc); err != nil {
		return 0, nil, err
	}
	payload = decodePayload(body, int(count))
	return tag, payload, nil
}

// checkFrameCount rejects element counts that cannot be legitimate: the wire
// field is untrusted, and a corrupt value would otherwise drive a giant
// allocation in the read loop.
func checkFrameCount(count uint32, maxElems int) error {
	if int64(count) > int64(maxElems) {
		return fmt.Errorf("transport: frame count %d exceeds limit %d (corrupt or hostile frame)",
			count, maxElems)
	}
	return nil
}

// checkFrameCRC verifies the payload checksum carried in the header against
// the received payload bytes.
func checkFrameCRC(body []byte, crc uint32) error {
	if got := crc32.Checksum(body, frameCRCTable); got != crc {
		return fmt.Errorf("transport: frame payload checksum mismatch (got %#x, header %#x)", got, crc)
	}
	return nil
}

// decodePayload converts count little-endian float64 words.
func decodePayload(body []byte, count int) []float64 {
	payload := make([]float64, count)
	decodePayloadInto(payload, body)
	return payload
}

// decodePayloadInto fills dst (len == word count) from body without
// allocating; the TCP read loop pairs it with a pooled destination.
func decodePayloadInto(dst []float64, body []byte) {
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[8*i:]))
	}
}
