package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"partialreduce/internal/trace"
)

// LinkFault is a fault spec for one directed link (from, to). It models the
// partial failures real heterogeneous clusters mostly suffer: one-directional
// loss, delay spikes, and severed links that stall a collective forever
// rather than killing an endpoint.
type LinkFault struct {
	// Drop is the per-message drop probability on this link.
	Drop float64
	// DropFirst deterministically drops the first K messages on this link
	// (after that, probabilistic faults apply). Deterministic loss is what
	// retry tests pin down.
	DropFirst int
	// DelayRate is the per-message probability of delaying by Delay.
	DelayRate float64
	// Delay is the injected latency for delayed messages on this link.
	Delay time.Duration
	// Sever silently loses every message on this link until healed — the
	// one-directional cable cut. Receivers need deadlines, not luck.
	Sever bool
}

// Partition cuts a set of ranks off from the rest of the world for a wall
// clock window measured from world creation: messages crossing the partition
// boundary (exactly one endpoint in Ranks) are silently dropped while the
// window is active. Until == 0 means "until Heal".
type Partition struct {
	Ranks []int
	From  time.Duration
	Until time.Duration
}

// active reports whether the partition is in force at elapsed time now.
func (p Partition) active(now time.Duration) bool {
	return now >= p.From && (p.Until == 0 || now < p.Until)
}

// splits reports whether a message from -> to crosses the partition boundary.
func (p Partition) splits(from, to int) bool {
	inFrom, inTo := false, false
	for _, r := range p.Ranks {
		if r == from {
			inFrom = true
		}
		if r == to {
			inTo = true
		}
	}
	return inFrom != inTo
}

// FaultPlan is a seeded, deterministic fault schedule for a Faulty world.
// Decisions are drawn from one RNG stream per directed (from, to) pair, so a
// run whose per-direction message sequences are deterministic (as every
// collective schedule is) sees identical faults on every execution with the
// same seed.
type FaultPlan struct {
	// Seed drives every per-direction decision stream.
	Seed int64
	// DropRate is the per-message probability of silently losing a message.
	// Dropped messages are gone — callers relying on them need abort/timeout
	// recovery, exactly like a real lossy fabric.
	DropRate float64
	// DelayRate is the per-message probability of delaying a message by
	// Delay before it is handed to the inner transport.
	DelayRate float64
	// Delay is the injected latency for delayed messages.
	Delay time.Duration
	// CrashAfterSends maps rank -> number of successful Send calls after
	// which that rank crashes: its endpoint dies and every peer sees it as
	// down (*PeerDownError).
	CrashAfterSends map[int]int
	// LinkFaults maps a directed (from, to) pair to a link-level fault spec,
	// layered on top of the global rates. Healable via Heal/HealLink.
	LinkFaults map[[2]int]LinkFault
	// Partitions are timed network partitions (windows relative to world
	// creation). Healable via Heal.
	Partitions []Partition
}

// Validate reports whether the plan is usable.
func (p FaultPlan) Validate() error {
	if p.DropRate < 0 || p.DropRate > 1 || p.DelayRate < 0 || p.DelayRate > 1 {
		return fmt.Errorf("transport: fault rates must be in [0,1]")
	}
	if p.Delay < 0 {
		return fmt.Errorf("transport: negative fault delay")
	}
	for r, n := range p.CrashAfterSends {
		if n < 0 {
			return fmt.Errorf("transport: negative crash count for rank %d", r)
		}
	}
	for link, lf := range p.LinkFaults {
		if link[0] < 0 || link[1] < 0 {
			return fmt.Errorf("transport: link fault (%d,%d) has negative rank", link[0], link[1])
		}
		if link[0] == link[1] {
			return fmt.Errorf("transport: link fault (%d,%d) is a self-link", link[0], link[1])
		}
		if lf.Drop < 0 || lf.Drop > 1 || lf.DelayRate < 0 || lf.DelayRate > 1 {
			return fmt.Errorf("transport: link (%d,%d) fault rates must be in [0,1]", link[0], link[1])
		}
		if lf.Delay < 0 || lf.DropFirst < 0 {
			return fmt.Errorf("transport: link (%d,%d) has negative delay or drop count", link[0], link[1])
		}
	}
	for i, part := range p.Partitions {
		if len(part.Ranks) == 0 {
			return fmt.Errorf("transport: partition %d has no ranks", i)
		}
		seen := make(map[int]bool, len(part.Ranks))
		for _, r := range part.Ranks {
			if r < 0 {
				return fmt.Errorf("transport: partition %d has negative rank %d", i, r)
			}
			if seen[r] {
				return fmt.Errorf("transport: partition %d lists rank %d twice", i, r)
			}
			seen[r] = true
		}
		if part.From < 0 {
			return fmt.Errorf("transport: partition %d starts before time zero", i)
		}
		if part.Until != 0 && part.Until <= part.From {
			return fmt.Errorf("transport: partition %d window [%s,%s) is empty", i, part.From, part.Until)
		}
	}
	return nil
}

// checkRanks verifies every rank the plan names fits a world of n endpoints.
// Validate cannot do this (a plan is built before the world exists), so the
// constructors call it once the size is known.
func (p FaultPlan) checkRanks(n int) error {
	for r := range p.CrashAfterSends {
		if r < 0 || r >= n {
			return fmt.Errorf("transport: crash rank %d outside world of %d", r, n)
		}
	}
	for link := range p.LinkFaults {
		if link[0] >= n || link[1] >= n {
			return fmt.Errorf("transport: link fault (%d,%d) outside world of %d", link[0], link[1], n)
		}
	}
	for i, part := range p.Partitions {
		for _, r := range part.Ranks {
			if r >= n {
				return fmt.Errorf("transport: partition %d rank %d outside world of %d", i, r, n)
			}
		}
	}
	return nil
}

// linkState is the mutable per-directed-link fault state: the spec, the sent
// counter (for DropFirst), and the link's own decision stream.
type linkState struct {
	fault LinkFault
	sent  int
	rng   *splitmix
}

// faultyWorld is the state shared by all endpoints of one Faulty world.
type faultyWorld struct {
	mu    sync.Mutex
	plan  FaultPlan
	inner []Transport
	dead  []bool
	start time.Time
	links map[[2]int]*linkState
	parts []Partition
	// partFired tracks which timed partitions have had their open (1) and
	// close (2) trace instants emitted; the windows are evaluated lazily,
	// so the events fire on the first message decision that observes the
	// transition.
	partFired []uint8
	// tracer, when non-nil, records the fault plane: KLinkSever/KLinkHeal,
	// KLinkDrop per lost frame, KPartition/KPartitionHeal windows, KCrash.
	tracer *trace.Tracer
	// faulted is true while any link faults or partitions are configured; a
	// zero plan never takes the link-decision lock (pass-through property).
	faulted atomic.Bool
}

// refreshFaulted recomputes the fast-path flag. Callers hold w.mu.
func (w *faultyWorld) refreshFaulted() {
	w.faulted.Store(len(w.links) > 0 || len(w.parts) > 0)
}

// linkDecision applies partition and link-level faults for one message on the
// directed link from -> to at elapsed time now.
func (w *faultyWorld) linkDecision(from, to int, now time.Duration) (drop bool, delay time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for i := range w.parts {
		part := w.parts[i]
		active := part.active(now)
		if i < len(w.partFired) {
			// Lazily emit the window transitions the first time a message
			// decision observes them.
			if active && w.partFired[i] == 0 {
				w.partFired[i] = 1
				w.tracer.Instant(trace.KPartition, trace.ControllerTrack, -1, int64(part.Ranks[0]), int64(len(part.Ranks)))
			} else if !active && w.partFired[i] == 1 && now >= part.From {
				w.partFired[i] = 2
				w.tracer.Instant(trace.KPartitionHeal, trace.ControllerTrack, -1, int64(part.Ranks[0]), int64(len(part.Ranks)))
			}
		}
		if active && part.splits(from, to) {
			w.tracer.Instant(trace.KLinkDrop, int32(from), -1, int64(from), int64(to))
			return true, 0
		}
	}
	ls, ok := w.links[[2]int{from, to}]
	if !ok {
		return false, 0
	}
	ls.sent++
	if ls.fault.Sever || ls.sent <= ls.fault.DropFirst ||
		(ls.fault.Drop > 0 && ls.rng.float64() < ls.fault.Drop) {
		w.tracer.Instant(trace.KLinkDrop, int32(from), -1, int64(from), int64(to))
		return true, 0
	}
	if ls.fault.DelayRate > 0 && ls.rng.float64() < ls.fault.DelayRate {
		return false, ls.fault.Delay
	}
	return false, 0
}

// Faulty wraps a Transport endpoint and injects crashes, drops, and delays
// according to a shared FaultPlan. With a zero plan it is a transparent
// pass-through (the property the collective tests pin down). Faulty forwards
// PeerFailer and OpAborter to the inner endpoint.
type Faulty struct {
	inner Transport
	world *faultyWorld
	rank  int

	mu      sync.Mutex
	streams []*splitmix // decision stream per destination rank
	sends   int
}

// newFaultyWorld builds the shared world state for n ranks, copying the
// plan's link and partition specs into mutable (healable) state.
func newFaultyWorld(inner []Transport, plan FaultPlan, n int) *faultyWorld {
	w := &faultyWorld{
		plan:  plan,
		inner: inner,
		dead:  make([]bool, n),
		start: time.Now(),
		links: make(map[[2]int]*linkState, len(plan.LinkFaults)),
	}
	for link, lf := range plan.LinkFaults {
		w.links[link] = &linkState{
			fault: lf,
			rng:   newSplitmix(plan.Seed, 0x11CC+int64(link[0])*int64(n+1)+int64(link[1])),
		}
	}
	w.parts = append(w.parts, plan.Partitions...)
	w.partFired = make([]uint8, len(w.parts))
	w.refreshFaulted()
	return w
}

// NewFaultyWorld wraps every endpoint of an in-process world with fault
// injection driven by plan. len(inner) must be the world size and entry i
// must be rank i's endpoint. Invalid plans are rejected at construction.
func NewFaultyWorld(inner []Transport, plan FaultPlan) ([]*Faulty, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	n := len(inner)
	if n < 1 {
		return nil, fmt.Errorf("transport: empty world")
	}
	if err := plan.checkRanks(n); err != nil {
		return nil, err
	}
	w := newFaultyWorld(inner, plan, n)
	eps := make([]*Faulty, n)
	for i := range eps {
		streams := make([]*splitmix, n)
		for j := range streams {
			streams[j] = newSplitmix(plan.Seed, int64(i)*int64(n)+int64(j))
		}
		eps[i] = &Faulty{inner: inner[i], world: w, rank: i, streams: streams}
	}
	return eps, nil
}

// NewFaultyEndpoint wraps a single endpoint (typically one process's TCP
// transport) with send-side fault injection driven by plan. When every
// process of a deployment wraps its endpoint with the same plan, partitions
// behave symmetrically: each side drops its own outbound crossings. Ranks in
// the plan refer to world ranks; only faults whose source is this endpoint's
// rank ever apply.
func NewFaultyEndpoint(inner Transport, plan FaultPlan) (*Faulty, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	n := inner.Size()
	if err := plan.checkRanks(n); err != nil {
		return nil, err
	}
	world := make([]Transport, n)
	world[inner.Rank()] = inner
	w := newFaultyWorld(world, plan, n)
	streams := make([]*splitmix, n)
	for j := range streams {
		streams[j] = newSplitmix(plan.Seed, int64(inner.Rank())*int64(n)+int64(j))
	}
	return &Faulty{inner: inner, world: w, rank: inner.Rank(), streams: streams}, nil
}

// SetTracer attaches a trace recorder to the whole Faulty world (shared by
// every endpoint): link sever/heal, per-frame drops, partition windows, and
// crashes become trace instants. A nil tracer disables recording.
func (f *Faulty) SetTracer(t *trace.Tracer) {
	f.world.mu.Lock()
	f.world.tracer = t
	f.world.mu.Unlock()
}

// Kill crashes rank now: its endpoint and every peer treat it as down. Safe
// to call from any goroutine; idempotent.
func (f *Faulty) Kill(rank int) {
	w := f.world
	w.mu.Lock()
	if rank < 0 || rank >= len(w.dead) || w.dead[rank] {
		w.mu.Unlock()
		return
	}
	w.dead[rank] = true
	tr := w.tracer
	w.mu.Unlock()
	tr.Instant(trace.KCrash, int32(rank), -1, 0, 0)
	FailPeerEverywhere(w.inner, rank)
}

// Revive re-admits rank after a checkpoint-based rejoin.
func (f *Faulty) Revive(rank int) {
	w := f.world
	w.mu.Lock()
	if rank < 0 || rank >= len(w.dead) || !w.dead[rank] {
		w.mu.Unlock()
		return
	}
	w.dead[rank] = false
	w.mu.Unlock()
	RevivePeerEverywhere(w.inner, rank)
}

func (f *Faulty) deadRank(rank int) bool {
	f.world.mu.Lock()
	defer f.world.mu.Unlock()
	return f.world.dead[rank]
}

// Rank implements Transport.
func (f *Faulty) Rank() int { return f.inner.Rank() }

// Size implements Transport.
func (f *Faulty) Size() int { return f.inner.Size() }

// Send implements Transport, applying the fault plan before forwarding.
func (f *Faulty) Send(to int, tag uint64, payload []float64) error {
	if f.deadRank(f.rank) {
		return &PeerDownError{Peer: f.rank}
	}
	if to >= 0 && to < f.Size() && f.deadRank(to) {
		return &PeerDownError{Peer: to}
	}
	plan := f.world.plan

	f.mu.Lock()
	f.sends++
	crashNow := false
	if limit, ok := plan.CrashAfterSends[f.rank]; ok && f.sends > limit {
		crashNow = true
	}
	var drop, delay bool
	if !crashNow && to >= 0 && to < len(f.streams) {
		s := f.streams[to]
		if plan.DropRate > 0 && s.float64() < plan.DropRate {
			drop = true
		}
		if plan.DelayRate > 0 && s.float64() < plan.DelayRate {
			delay = true
		}
	}
	f.mu.Unlock()

	if crashNow {
		f.Kill(f.rank)
		return &PeerDownError{Peer: f.rank}
	}
	if drop {
		return nil // lost on the wire
	}
	if f.world.faulted.Load() {
		linkDrop, linkDelay := f.world.linkDecision(f.rank, to, time.Since(f.world.start))
		if linkDrop {
			return nil // lost on the wire (sever, partition, or link drop)
		}
		if linkDelay > 0 {
			time.Sleep(linkDelay)
		}
	}
	if delay && plan.Delay > 0 {
		time.Sleep(plan.Delay)
	}
	return f.inner.Send(to, tag, payload)
}

// SeverLink cuts the directed link from -> to: every message on it is lost
// until HealLink or Heal. Safe to call from any goroutine mid-run.
func (f *Faulty) SeverLink(from, to int) {
	w := f.world
	w.mu.Lock()
	defer w.mu.Unlock()
	ls, ok := w.links[[2]int{from, to}]
	if !ok {
		ls = &linkState{rng: newSplitmix(w.plan.Seed, 0x11CC+int64(from)*int64(len(w.dead)+1)+int64(to))}
		w.links[[2]int{from, to}] = ls
	}
	ls.fault.Sever = true
	w.tracer.Instant(trace.KLinkSever, trace.ControllerTrack, -1, int64(from), int64(to))
	w.refreshFaulted()
}

// HealLink clears the fault spec of the directed link from -> to.
func (f *Faulty) HealLink(from, to int) {
	w := f.world
	w.mu.Lock()
	defer w.mu.Unlock()
	delete(w.links, [2]int{from, to})
	w.tracer.Instant(trace.KLinkHeal, trace.ControllerTrack, -1, int64(from), int64(to))
	w.refreshFaulted()
}

// Heal clears every link fault and partition in the world. Messages flow
// normally afterwards (global drop/delay rates and crash schedules remain).
func (f *Faulty) Heal() {
	w := f.world
	w.mu.Lock()
	defer w.mu.Unlock()
	w.links = make(map[[2]int]*linkState)
	w.parts = nil
	w.partFired = nil
	w.tracer.Instant(trace.KLinkHeal, trace.ControllerTrack, -1, -1, -1)
	w.refreshFaulted()
}

// Recv implements Transport.
func (f *Faulty) Recv(from int, tag uint64) ([]float64, error) {
	if f.deadRank(f.rank) {
		return nil, &PeerDownError{Peer: f.rank}
	}
	return f.inner.Recv(from, tag)
}

// RecvInto implements Transport, forwarding to the inner endpoint (faults
// are injected on the send side, so the zero-copy receive passes through).
func (f *Faulty) RecvInto(from int, tag uint64, dst []float64) (int, error) {
	if f.deadRank(f.rank) {
		return 0, &PeerDownError{Peer: f.rank}
	}
	return f.inner.RecvInto(from, tag, dst)
}

// RecvIntoTimeout implements DeadlineRecver when the inner endpoint does;
// otherwise it degrades to an unbounded RecvInto.
func (f *Faulty) RecvIntoTimeout(from int, tag uint64, dst []float64, timeout time.Duration) (int, error) {
	if f.deadRank(f.rank) {
		return 0, &PeerDownError{Peer: f.rank}
	}
	return RecvIntoDeadline(f.inner, from, tag, dst, timeout)
}

// PurgeOp implements OpPurger, forwarding to the inner endpoint.
func (f *Faulty) PurgeOp(op uint32) { PurgeOpAt(f.inner, op) }

// FailPeer implements PeerFailer.
func (f *Faulty) FailPeer(peer int) {
	if pf, ok := f.inner.(PeerFailer); ok {
		pf.FailPeer(peer)
	}
}

// RevivePeer implements PeerFailer.
func (f *Faulty) RevivePeer(peer int) {
	if pf, ok := f.inner.(PeerFailer); ok {
		pf.RevivePeer(peer)
	}
}

// AbortOp implements OpAborter.
func (f *Faulty) AbortOp(op uint32) {
	if oa, ok := f.inner.(OpAborter); ok {
		oa.AbortOp(op)
	}
}

// FailSelf implements SelfFailer: the wrapped rank crashes now.
func (f *Faulty) FailSelf() { f.Kill(f.rank) }

// Close implements Transport.
func (f *Faulty) Close() error { return f.inner.Close() }

// splitmix is a tiny deterministic RNG (SplitMix64), independent per stream;
// it avoids dragging math/rand state-sharing concerns into fault decisions.
type splitmix struct{ state uint64 }

func newSplitmix(seed, id int64) *splitmix {
	z := uint64(seed)*0x9E3779B97F4A7C15 + uint64(id)*0xBF58476D1CE4E5B9 + 0x2545F4914F6CDD1D
	return &splitmix{state: z}
}

func (s *splitmix) next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (s *splitmix) float64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}
