package transport

import (
	"fmt"
	"sync"
	"time"
)

// FaultPlan is a seeded, deterministic fault schedule for a Faulty world.
// Decisions are drawn from one RNG stream per directed (from, to) pair, so a
// run whose per-direction message sequences are deterministic (as every
// collective schedule is) sees identical faults on every execution with the
// same seed.
type FaultPlan struct {
	// Seed drives every per-direction decision stream.
	Seed int64
	// DropRate is the per-message probability of silently losing a message.
	// Dropped messages are gone — callers relying on them need abort/timeout
	// recovery, exactly like a real lossy fabric.
	DropRate float64
	// DelayRate is the per-message probability of delaying a message by
	// Delay before it is handed to the inner transport.
	DelayRate float64
	// Delay is the injected latency for delayed messages.
	Delay time.Duration
	// CrashAfterSends maps rank -> number of successful Send calls after
	// which that rank crashes: its endpoint dies and every peer sees it as
	// down (*PeerDownError).
	CrashAfterSends map[int]int
}

// Validate reports whether the plan is usable.
func (p FaultPlan) Validate() error {
	if p.DropRate < 0 || p.DropRate > 1 || p.DelayRate < 0 || p.DelayRate > 1 {
		return fmt.Errorf("transport: fault rates must be in [0,1]")
	}
	if p.Delay < 0 {
		return fmt.Errorf("transport: negative fault delay")
	}
	for r, n := range p.CrashAfterSends {
		if n < 0 {
			return fmt.Errorf("transport: negative crash count for rank %d", r)
		}
	}
	return nil
}

// faultyWorld is the state shared by all endpoints of one Faulty world.
type faultyWorld struct {
	mu    sync.Mutex
	plan  FaultPlan
	inner []Transport
	dead  []bool
}

// Faulty wraps a Transport endpoint and injects crashes, drops, and delays
// according to a shared FaultPlan. With a zero plan it is a transparent
// pass-through (the property the collective tests pin down). Faulty forwards
// PeerFailer and OpAborter to the inner endpoint.
type Faulty struct {
	inner Transport
	world *faultyWorld
	rank  int

	mu      sync.Mutex
	streams []*splitmix // decision stream per destination rank
	sends   int
}

// NewFaultyWorld wraps every endpoint of an in-process world with fault
// injection driven by plan. len(inner) must be the world size and entry i
// must be rank i's endpoint.
func NewFaultyWorld(inner []Transport, plan FaultPlan) ([]*Faulty, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	n := len(inner)
	if n < 1 {
		return nil, fmt.Errorf("transport: empty world")
	}
	w := &faultyWorld{plan: plan, inner: inner, dead: make([]bool, n)}
	eps := make([]*Faulty, n)
	for i := range eps {
		streams := make([]*splitmix, n)
		for j := range streams {
			streams[j] = newSplitmix(plan.Seed, int64(i)*int64(n)+int64(j))
		}
		eps[i] = &Faulty{inner: inner[i], world: w, rank: i, streams: streams}
	}
	return eps, nil
}

// Kill crashes rank now: its endpoint and every peer treat it as down. Safe
// to call from any goroutine; idempotent.
func (f *Faulty) Kill(rank int) {
	w := f.world
	w.mu.Lock()
	if rank < 0 || rank >= len(w.dead) || w.dead[rank] {
		w.mu.Unlock()
		return
	}
	w.dead[rank] = true
	w.mu.Unlock()
	FailPeerEverywhere(w.inner, rank)
}

// Revive re-admits rank after a checkpoint-based rejoin.
func (f *Faulty) Revive(rank int) {
	w := f.world
	w.mu.Lock()
	if rank < 0 || rank >= len(w.dead) || !w.dead[rank] {
		w.mu.Unlock()
		return
	}
	w.dead[rank] = false
	w.mu.Unlock()
	RevivePeerEverywhere(w.inner, rank)
}

func (f *Faulty) deadRank(rank int) bool {
	f.world.mu.Lock()
	defer f.world.mu.Unlock()
	return f.world.dead[rank]
}

// Rank implements Transport.
func (f *Faulty) Rank() int { return f.inner.Rank() }

// Size implements Transport.
func (f *Faulty) Size() int { return f.inner.Size() }

// Send implements Transport, applying the fault plan before forwarding.
func (f *Faulty) Send(to int, tag uint64, payload []float64) error {
	if f.deadRank(f.rank) {
		return &PeerDownError{Peer: f.rank}
	}
	if to >= 0 && to < f.Size() && f.deadRank(to) {
		return &PeerDownError{Peer: to}
	}
	plan := f.world.plan

	f.mu.Lock()
	f.sends++
	crashNow := false
	if limit, ok := plan.CrashAfterSends[f.rank]; ok && f.sends > limit {
		crashNow = true
	}
	var drop, delay bool
	if !crashNow && to >= 0 && to < len(f.streams) {
		s := f.streams[to]
		if plan.DropRate > 0 && s.float64() < plan.DropRate {
			drop = true
		}
		if plan.DelayRate > 0 && s.float64() < plan.DelayRate {
			delay = true
		}
	}
	f.mu.Unlock()

	if crashNow {
		f.Kill(f.rank)
		return &PeerDownError{Peer: f.rank}
	}
	if drop {
		return nil // lost on the wire
	}
	if delay && plan.Delay > 0 {
		time.Sleep(plan.Delay)
	}
	return f.inner.Send(to, tag, payload)
}

// Recv implements Transport.
func (f *Faulty) Recv(from int, tag uint64) ([]float64, error) {
	if f.deadRank(f.rank) {
		return nil, &PeerDownError{Peer: f.rank}
	}
	return f.inner.Recv(from, tag)
}

// RecvInto implements Transport, forwarding to the inner endpoint (faults
// are injected on the send side, so the zero-copy receive passes through).
func (f *Faulty) RecvInto(from int, tag uint64, dst []float64) (int, error) {
	if f.deadRank(f.rank) {
		return 0, &PeerDownError{Peer: f.rank}
	}
	return f.inner.RecvInto(from, tag, dst)
}

// FailPeer implements PeerFailer.
func (f *Faulty) FailPeer(peer int) {
	if pf, ok := f.inner.(PeerFailer); ok {
		pf.FailPeer(peer)
	}
}

// RevivePeer implements PeerFailer.
func (f *Faulty) RevivePeer(peer int) {
	if pf, ok := f.inner.(PeerFailer); ok {
		pf.RevivePeer(peer)
	}
}

// AbortOp implements OpAborter.
func (f *Faulty) AbortOp(op uint32) {
	if oa, ok := f.inner.(OpAborter); ok {
		oa.AbortOp(op)
	}
}

// FailSelf implements SelfFailer: the wrapped rank crashes now.
func (f *Faulty) FailSelf() { f.Kill(f.rank) }

// Close implements Transport.
func (f *Faulty) Close() error { return f.inner.Close() }

// splitmix is a tiny deterministic RNG (SplitMix64), independent per stream;
// it avoids dragging math/rand state-sharing concerns into fault decisions.
type splitmix struct{ state uint64 }

func newSplitmix(seed, id int64) *splitmix {
	z := uint64(seed)*0x9E3779B97F4A7C15 + uint64(id)*0xBF58476D1CE4E5B9 + 0x2545F4914F6CDD1D
	return &splitmix{state: z}
}

func (s *splitmix) next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (s *splitmix) float64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}
