package transport

import "testing"

// BenchmarkEncodeFrame measures the pooled, append-style frame encoder on a
// ring-segment-sized payload. The Into variant with a recycled buffer is the
// hot path (TCP send); steady state must not allocate.
func BenchmarkEncodeFrame(b *testing.B) {
	payload := make([]float64, 4096)
	for i := range payload {
		payload[i] = float64(i)
	}
	b.Run("into", func(b *testing.B) {
		buf := make([]byte, 0, FrameLen(payload))
		b.SetBytes(int64(FrameLen(payload)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = EncodeFrameInto(buf[:0], 42, payload)
		}
		_ = buf
	})
	b.Run("alloc", func(b *testing.B) {
		b.SetBytes(int64(FrameLen(payload)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = EncodeFrame(42, payload)
		}
	})
}

// BenchmarkSendRecvInto measures one pooled Send/RecvInto round trip over
// the in-process transport.
func BenchmarkSendRecvInto(b *testing.B) {
	eps := NewMem(2)
	payload := make([]float64, 4096)
	dst := make([]float64, 4096)
	b.SetBytes(int64(8 * len(payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := eps[0].Send(1, 7, payload); err != nil {
			b.Fatal(err)
		}
		if _, err := eps[1].RecvInto(0, 7, dst); err != nil {
			b.Fatal(err)
		}
	}
}
