package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"sync"
	"testing"
	"time"
)

// --- frame codec fuzzing -------------------------------------------------

// FuzzFrameCodec checks the wire codec on arbitrary bytes: decoding never
// panics, and every successfully decoded frame re-encodes to exactly the
// input bytes (the codec has one canonical form, so decode∘encode = id).
func FuzzFrameCodec(f *testing.F) {
	f.Add(EncodeFrame(0, nil))
	f.Add(EncodeFrame(42, []float64{1, -2.5, 3e300}))
	f.Add(EncodeFrame(^uint64(0), []float64{0}))
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	// Header advertising a giant count with no body.
	f.Add(EncodeFrame(7, nil)[:frameHeaderSize-1])
	hostile := make([]byte, frameHeaderSize)
	putFrameHeader(hostile, 9, ^uint32(0), 0)
	f.Add(hostile)
	// Bit-flipped payloads: single-bit corruption in the body and in the
	// checksum field itself, both of which the payload CRC must reject.
	flipped := EncodeFrame(3, []float64{1, 2, 3})
	flipped[frameHeaderSize+5] ^= 0x10
	f.Add(flipped)
	crcFlipped := EncodeFrame(3, []float64{4, 5})
	crcFlipped[13] ^= 0x01
	f.Add(crcFlipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		tag, payload, err := DecodeFrame(data, 0)
		if err != nil {
			return
		}
		if len(payload) > DefaultMaxFrameElems {
			t.Fatalf("decoder accepted %d elements past the limit", len(payload))
		}
		if got := EncodeFrame(tag, payload); !bytes.Equal(got, data) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", data, got)
		}
	})
}

// FuzzFrameRoundTrip drives the codec from the value side: any (tag,
// payload) survives an encode/decode round trip bit-exactly, including NaN
// payloads (the codec must not canonicalize floats).
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint64(0), []byte{})
	f.Add(uint64(1)<<24|uint64(2)<<16|3, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, tag uint64, raw []byte) {
		// Reinterpret the fuzz bytes as float64 words (8 bytes each), so
		// arbitrary bit patterns — NaNs, infinities, denormals — all appear.
		payload := make([]float64, 0, len(raw)/8)
		for len(raw) >= 8 {
			payload = append(payload, math.Float64frombits(binary.LittleEndian.Uint64(raw)))
			raw = raw[8:]
		}
		gotTag, gotPayload, err := DecodeFrame(EncodeFrame(tag, payload), 0)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if gotTag != tag || len(gotPayload) != len(payload) {
			t.Fatalf("round trip changed shape: tag %d->%d len %d->%d",
				tag, gotTag, len(payload), len(gotPayload))
		}
		enc1 := EncodeFrame(tag, payload)
		enc2 := EncodeFrame(gotTag, gotPayload)
		if !bytes.Equal(enc1, enc2) {
			t.Fatal("payload bits changed across round trip")
		}
	})
}

func TestDecodeFrameRejectsOversizedCount(t *testing.T) {
	buf := EncodeFrame(5, []float64{0})
	if _, _, err := DecodeFrame(buf, 1); err != nil {
		t.Fatalf("legal frame rejected: %v", err)
	}
	putFrameHeader(buf, 5, 2, 0)
	if _, _, err := DecodeFrame(buf, 1); err == nil {
		t.Fatal("count above limit accepted")
	}
	putFrameHeader(buf, 5, ^uint32(0), 0)
	if _, _, err := DecodeFrame(buf, 0); err == nil {
		t.Fatal("giant count accepted under default limit")
	}
}

// TestDecodeFrameRejectsBitFlips flips every bit of a valid frame beyond
// the tag field — the element count, the checksum, and the payload — and
// asserts the decoder rejects each corruption. (CRC32 detects all
// single-bit errors, so this check is exhaustive, not probabilistic. The
// tag is routing metadata, deliberately outside the payload checksum.)
func TestDecodeFrameRejectsBitFlips(t *testing.T) {
	orig := EncodeFrame(42, []float64{1.5, -2.25, 3e9, 0})
	if _, _, err := DecodeFrame(orig, 0); err != nil {
		t.Fatalf("pristine frame rejected: %v", err)
	}
	buf := make([]byte, len(orig))
	for byteIdx := 8; byteIdx < len(orig); byteIdx++ {
		for bit := 0; bit < 8; bit++ {
			copy(buf, orig)
			buf[byteIdx] ^= 1 << bit
			if _, _, err := DecodeFrame(buf, 0); err == nil {
				t.Fatalf("flip of byte %d bit %d went undetected", byteIdx, bit)
			}
		}
	}
}

// --- zero-fault FaultyTransport ≡ Mem ------------------------------------

// exchange runs a fixed deterministic message program over a 4-endpoint
// world and returns every received payload in a fixed order.
func exchange(t *testing.T, eps []Transport) [][]float64 {
	t.Helper()
	n := len(eps)
	var wg sync.WaitGroup
	out := make([][]float64, n*n)
	for r := 0; r < n; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			for to := 0; to < n; to++ {
				payload := []float64{float64(r), float64(to), float64(r*n + to)}
				if err := eps[r].Send(to, uint64(r*n+to), payload); err != nil {
					t.Errorf("send %d->%d: %v", r, to, err)
					return
				}
			}
			for from := 0; from < n; from++ {
				got, err := eps[r].Recv(from, uint64(from*n+r))
				if err != nil {
					t.Errorf("recv %d->%d: %v", from, r, err)
					return
				}
				out[from*n+r] = got
			}
		}()
	}
	wg.Wait()
	return out
}

// TestFaultyZeroPlanTransparent pins the property all collective tests rely
// on: with a zero FaultPlan, a Faulty world behaves exactly like the Mem
// world it wraps — same deliveries, bit-identical payloads.
func TestFaultyZeroPlanTransparent(t *testing.T) {
	const n = 4
	plain := NewMem(n)
	plainT := make([]Transport, n)
	for i, ep := range plain {
		plainT[i] = ep
	}
	wrappedInner := NewMem(n)
	inner := make([]Transport, n)
	for i, ep := range wrappedInner {
		inner[i] = ep
	}
	faulty, err := NewFaultyWorld(inner, FaultPlan{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	wrapped := make([]Transport, n)
	for i, ep := range faulty {
		wrapped[i] = ep
	}

	a := exchange(t, plainT)
	b := exchange(t, wrapped)
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("delivery %d: lengths %d vs %d", i, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("delivery %d element %d: %v vs %v", i, j, a[i][j], b[i][j])
			}
		}
	}
}

// --- seeded fault determinism --------------------------------------------

// countingTransport records which Send calls reach it; everything else is
// inert. It stands in for a real endpoint when only the fault layer's
// decisions are under test.
type countingTransport struct {
	rank, size int
	mu         sync.Mutex
	delivered  []uint64 // tags that made it through
}

func (c *countingTransport) Rank() int { return c.rank }
func (c *countingTransport) Size() int { return c.size }
func (c *countingTransport) Send(to int, tag uint64, payload []float64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.delivered = append(c.delivered, tag)
	return nil
}
func (c *countingTransport) Recv(from int, tag uint64) ([]float64, error) {
	return nil, errors.New("not implemented")
}
func (c *countingTransport) RecvInto(from int, tag uint64, dst []float64) (int, error) {
	return 0, errors.New("not implemented")
}
func (c *countingTransport) Close() error { return nil }

func dropPattern(t *testing.T, seed int64, msgs int) []uint64 {
	t.Helper()
	inner := []Transport{
		&countingTransport{rank: 0, size: 2},
		&countingTransport{rank: 1, size: 2},
	}
	eps, err := NewFaultyWorld(inner, FaultPlan{Seed: seed, DropRate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < msgs; i++ {
		if err := eps[0].Send(1, uint64(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	return inner[0].(*countingTransport).delivered
}

// TestFaultyDropsDeterministic: the same seed yields the same drop pattern
// on every run; a different seed yields a different one.
func TestFaultyDropsDeterministic(t *testing.T) {
	const msgs = 200
	a := dropPattern(t, 7, msgs)
	b := dropPattern(t, 7, msgs)
	if len(a) != len(b) {
		t.Fatalf("same seed, different delivery counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different pattern at %d: %d vs %d", i, a[i], b[i])
		}
	}
	if len(a) == 0 || len(a) == msgs {
		t.Fatalf("degenerate drop pattern: %d of %d delivered", len(a), msgs)
	}
	c := dropPattern(t, 8, msgs)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical 200-message patterns")
	}
}

// TestFaultyKillIsolation: killing one rank fails exactly the traffic that
// touches it; the rest of the world keeps flowing, and Revive restores it.
func TestFaultyKillIsolation(t *testing.T) {
	mems := NewMem(3)
	inner := make([]Transport, 3)
	for i, ep := range mems {
		inner[i] = ep
	}
	eps, err := NewFaultyWorld(inner, FaultPlan{})
	if err != nil {
		t.Fatal(err)
	}
	eps[0].Kill(2)

	var pd *PeerDownError
	if err := eps[0].Send(2, 1, []float64{1}); !errors.As(err, &pd) || pd.Peer != 2 {
		t.Fatalf("send to dead rank: %v", err)
	}
	if err := eps[2].Send(0, 2, []float64{1}); !errors.As(err, &pd) {
		t.Fatalf("send from dead rank: %v", err)
	}
	if _, err := eps[0].Recv(2, 3); !errors.As(err, &pd) || pd.Peer != 2 {
		t.Fatalf("recv from dead rank: %v", err)
	}
	// Survivors are unaffected.
	if err := eps[0].Send(1, 4, []float64{42}); err != nil {
		t.Fatalf("survivor send: %v", err)
	}
	if got, err := eps[1].Recv(0, 4); err != nil || got[0] != 42 {
		t.Fatalf("survivor recv: %v %v", got, err)
	}

	eps[0].Revive(2)
	if err := eps[0].Send(2, 5, []float64{7}); err != nil {
		t.Fatalf("send after revive: %v", err)
	}
	if got, err := eps[2].Recv(0, 5); err != nil || got[0] != 7 {
		t.Fatalf("recv after revive: %v %v", got, err)
	}
}

// TestFaultyCrashAfterSends: the scheduled crash fires on the (limit+1)-th
// send and every endpoint observes the rank as down.
func TestFaultyCrashAfterSends(t *testing.T) {
	mems := NewMem(2)
	inner := make([]Transport, 2)
	for i, ep := range mems {
		inner[i] = ep
	}
	eps, err := NewFaultyWorld(inner, FaultPlan{Seed: 1, CrashAfterSends: map[int]int{0: 3}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := eps[0].Send(1, uint64(i), nil); err != nil {
			t.Fatalf("send %d before crash: %v", i, err)
		}
	}
	var pd *PeerDownError
	if err := eps[0].Send(1, 3, nil); !errors.As(err, &pd) || pd.Peer != 0 {
		t.Fatalf("crash send: %v", err)
	}
	if err := eps[1].Send(0, 4, nil); !errors.As(err, &pd) || pd.Peer != 0 {
		t.Fatalf("peer view after crash: %v", err)
	}
}

// TestFaultPlanValidate: malformed plans are rejected up front.
func TestFaultPlanValidate(t *testing.T) {
	bad := []FaultPlan{
		{DropRate: -0.1},
		{DropRate: 1.1},
		{DelayRate: 2},
		{Delay: -time.Second},
		{CrashAfterSends: map[int]int{1: -1}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("bad plan %d accepted: %+v", i, p)
		}
	}
	if err := (FaultPlan{DropRate: 0.5, DelayRate: 0.5, Delay: time.Millisecond}).Validate(); err != nil {
		t.Fatalf("good plan rejected: %v", err)
	}
	if _, err := NewFaultyWorld(nil, FaultPlan{}); err == nil {
		t.Fatal("empty world accepted")
	}
}

// --- TCP failure-path tests ----------------------------------------------

func startTCPWorldOpts(t *testing.T, n int, opts TCPOptions) []*TCP {
	t.Helper()
	addrs := freeAddrs(t, n)
	eps := make([]*TCP, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			eps[i], errs[i] = NewTCPOpts(i, addrs, opts)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, ep := range eps {
			ep.Close()
		}
	})
	return eps
}

// TestTCPMissingPeerTimesOut: mesh formation with an absent rank fails after
// MeshTimeout instead of hanging forever.
func TestTCPMissingPeerTimesOut(t *testing.T) {
	addrs := freeAddrs(t, 2)
	start := time.Now()
	_, err := NewTCPOpts(0, addrs, TCPOptions{MeshTimeout: 300 * time.Millisecond})
	if err == nil {
		t.Fatal("mesh formed without rank 1")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
}

// TestTCPOversizedFrameFailsPeer: a frame advertising more elements than
// MaxFrameElems is treated as corruption from that peer — the receiver marks
// the sender down rather than allocating the advertised payload.
func TestTCPOversizedFrameFailsPeer(t *testing.T) {
	eps := startTCPWorldOpts(t, 2, TCPOptions{MaxFrameElems: 8})
	// Within the bound: delivered.
	if err := eps[0].Send(1, 1, make([]float64, 8)); err != nil {
		t.Fatal(err)
	}
	if got, err := eps[1].Recv(0, 1); err != nil || len(got) != 8 {
		t.Fatalf("legal frame: %v %v", len(got), err)
	}
	// Beyond the bound: the receiver fails rank 0.
	if err := eps[0].Send(1, 2, make([]float64, 9)); err != nil {
		t.Fatalf("oversized send errored locally: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := eps[1].Recv(0, 2)
		done <- err
	}()
	select {
	case err := <-done:
		var pd *PeerDownError
		if !errors.As(err, &pd) || pd.Peer != 0 {
			t.Fatalf("oversized frame: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("receiver hung on oversized frame")
	}
}

// TestTCPHeartbeatKeepsIdlePeersAlive: with heartbeats on, a long idle gap
// (many multiples of the heartbeat timeout) must not false-positive the
// failure detector.
func TestTCPHeartbeatKeepsIdlePeersAlive(t *testing.T) {
	eps := startTCPWorldOpts(t, 2, TCPOptions{
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  80 * time.Millisecond,
	})
	time.Sleep(400 * time.Millisecond) // 5× the timeout, zero data traffic
	if down := eps[0].DownPeers(); len(down) != 0 {
		t.Fatalf("idle peers declared down: %v", down)
	}
	if err := eps[0].Send(1, 11, []float64{3.5}); err != nil {
		t.Fatalf("send after idle: %v", err)
	}
	if got, err := eps[1].Recv(0, 11); err != nil || got[0] != 3.5 {
		t.Fatalf("recv after idle: %v %v", got, err)
	}
}

// TestTCPPeerLossIsolated: closing one endpoint fails only that peer; the
// surviving pair keeps exchanging messages.
func TestTCPPeerLossIsolated(t *testing.T) {
	eps := startTCPWorldOpts(t, 3, TCPOptions{})
	eps[2].Close()

	// Rank 0 eventually sees rank 2 down on recv.
	done := make(chan error, 1)
	go func() {
		_, err := eps[0].Recv(2, 21)
		done <- err
	}()
	select {
	case err := <-done:
		if !IsFailure(err) {
			t.Fatalf("recv from closed peer: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("recv from closed peer hung")
	}

	// 0 <-> 1 still works.
	if err := eps[0].Send(1, 22, []float64{1}); err != nil {
		t.Fatalf("survivor send: %v", err)
	}
	if got, err := eps[1].Recv(0, 22); err != nil || got[0] != 1 {
		t.Fatalf("survivor recv: %v %v", got, err)
	}
}
