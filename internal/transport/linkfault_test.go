package transport

import (
	"errors"
	"testing"
	"time"
)

// faultyMemWorld builds a Mem world wrapped by a Faulty layer under plan.
func faultyMemWorld(t *testing.T, n int, plan FaultPlan) []*Faulty {
	t.Helper()
	mems := NewMem(n)
	inner := make([]Transport, n)
	for i, ep := range mems {
		inner[i] = ep
	}
	eps, err := NewFaultyWorld(inner, plan)
	if err != nil {
		t.Fatal(err)
	}
	return eps
}

// recvTimes runs a bounded receive and reports whether it delivered.
func recvTimes(t *testing.T, ep *Faulty, from int, tag uint64, d time.Duration) ([]float64, bool) {
	t.Helper()
	buf := make([]float64, 8)
	n, err := ep.RecvIntoTimeout(from, tag, buf, d)
	if err != nil {
		if !IsTimeout(err) {
			t.Fatalf("recv tag %d: %v", tag, err)
		}
		return nil, false
	}
	return buf[:n], true
}

// TestFaultPlanValidateLinkFaults: the extended plan fields are validated up
// front — malformed link specs and partition windows are rejected before any
// endpoint exists.
func TestFaultPlanValidateLinkFaults(t *testing.T) {
	bad := []FaultPlan{
		{LinkFaults: map[[2]int]LinkFault{{0, 0}: {Sever: true}}},                           // self-link
		{LinkFaults: map[[2]int]LinkFault{{-1, 1}: {Sever: true}}},                          // negative rank
		{LinkFaults: map[[2]int]LinkFault{{0, 1}: {Drop: 1.5}}},                             // rate > 1
		{LinkFaults: map[[2]int]LinkFault{{0, 1}: {Drop: -0.1}}},                            // rate < 0
		{LinkFaults: map[[2]int]LinkFault{{0, 1}: {DropFirst: -1}}},                         // negative count
		{LinkFaults: map[[2]int]LinkFault{{0, 1}: {Delay: -time.Second}}},                   // negative delay
		{LinkFaults: map[[2]int]LinkFault{{0, 1}: {DelayRate: 2}}},                          // rate > 1
		{Partitions: []Partition{{Ranks: nil, From: 0}}},                                    // empty rank set
		{Partitions: []Partition{{Ranks: []int{1, 1}, From: 0}}},                            // duplicate rank
		{Partitions: []Partition{{Ranks: []int{-3}, From: 0}}},                              // negative rank
		{Partitions: []Partition{{Ranks: []int{1}, From: -time.Second}}},                    // negative start
		{Partitions: []Partition{{Ranks: []int{1}, From: time.Second, Until: time.Second}}}, // empty window
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad plan %d accepted: %+v", i, p)
		}
	}
	good := FaultPlan{
		LinkFaults: map[[2]int]LinkFault{
			{0, 1}: {Drop: 0.5, DropFirst: 3, Delay: time.Millisecond, DelayRate: 1},
			{2, 0}: {Sever: true},
		},
		Partitions: []Partition{
			{Ranks: []int{1, 2}, From: time.Second, Until: 2 * time.Second},
			{Ranks: []int{0}, From: 0}, // Until 0: never heals
		},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good plan rejected: %v", err)
	}
	// World construction enforces in-range partition/link ranks for its size.
	mems := NewMem(2)
	inner := []Transport{mems[0], mems[1]}
	if _, err := NewFaultyWorld(inner, FaultPlan{
		Partitions: []Partition{{Ranks: []int{5}, From: 0}},
	}); err == nil {
		t.Fatal("partition rank beyond world size accepted")
	}
	if _, err := NewFaultyWorld(inner, FaultPlan{
		LinkFaults: map[[2]int]LinkFault{{0, 7}: {Sever: true}},
	}); err == nil {
		t.Fatal("link rank beyond world size accepted")
	}
}

// TestFaultySeverHealLink: severing a directed link silently drops exactly
// that direction's traffic; the reverse direction still flows; HealLink
// restores delivery.
func TestFaultySeverHealLink(t *testing.T) {
	eps := faultyMemWorld(t, 2, FaultPlan{Seed: 3})
	eps[0].SeverLink(0, 1)

	if err := eps[0].Send(1, 1, []float64{1}); err != nil {
		t.Fatalf("send on severed link errored locally: %v", err)
	}
	if _, ok := recvTimes(t, eps[1], 0, 1, 100*time.Millisecond); ok {
		t.Fatal("message crossed a severed link")
	}
	// Reverse direction unaffected.
	if err := eps[1].Send(0, 2, []float64{2}); err != nil {
		t.Fatal(err)
	}
	if got, ok := recvTimes(t, eps[0], 1, 2, time.Second); !ok || got[0] != 2 {
		t.Fatalf("reverse direction broken: %v %v", got, ok)
	}

	eps[0].HealLink(0, 1)
	if err := eps[0].Send(1, 3, []float64{3}); err != nil {
		t.Fatal(err)
	}
	if got, ok := recvTimes(t, eps[1], 0, 3, time.Second); !ok || got[0] != 3 {
		t.Fatalf("healed link did not deliver: %v %v", got, ok)
	}
}

// TestFaultyLinkDropFirst: a DropFirst budget loses exactly the first k
// messages on the link and then gets out of the way — the fault shape
// collective retry is tested against.
func TestFaultyLinkDropFirst(t *testing.T) {
	eps := faultyMemWorld(t, 2, FaultPlan{
		Seed:       4,
		LinkFaults: map[[2]int]LinkFault{{0, 1}: {DropFirst: 2}},
	})
	for i := 0; i < 4; i++ {
		if err := eps[0].Send(1, uint64(i), []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, tag := range []uint64{0, 1} {
		if _, ok := recvTimes(t, eps[1], 0, tag, 100*time.Millisecond); ok {
			t.Fatalf("message %d survived the DropFirst budget", tag)
		}
	}
	for _, tag := range []uint64{2, 3} {
		if got, ok := recvTimes(t, eps[1], 0, tag, time.Second); !ok || got[0] != float64(tag) {
			t.Fatalf("message %d past the budget lost: %v %v", tag, got, ok)
		}
	}
}

// TestFaultyTimedPartition: during the window, traffic crossing the cut is
// lost in both directions while same-side traffic flows; after Until the
// partition heals by itself.
func TestFaultyTimedPartition(t *testing.T) {
	const window = 400 * time.Millisecond
	eps := faultyMemWorld(t, 3, FaultPlan{
		Seed:       5,
		Partitions: []Partition{{Ranks: []int{2}, From: 0, Until: window}},
	})

	// Crossing the cut, both directions: lost.
	if err := eps[0].Send(2, 1, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := eps[2].Send(0, 2, []float64{2}); err != nil {
		t.Fatal(err)
	}
	if _, ok := recvTimes(t, eps[2], 0, 1, 50*time.Millisecond); ok {
		t.Fatal("message crossed an active partition")
	}
	if _, ok := recvTimes(t, eps[0], 2, 2, 50*time.Millisecond); ok {
		t.Fatal("message crossed an active partition (reverse)")
	}
	// Same side: flows.
	if err := eps[0].Send(1, 3, []float64{3}); err != nil {
		t.Fatal(err)
	}
	if got, ok := recvTimes(t, eps[1], 0, 3, time.Second); !ok || got[0] != 3 {
		t.Fatalf("same-side traffic blocked: %v %v", got, ok)
	}

	// After the window the cut heals without intervention.
	time.Sleep(window + 50*time.Millisecond)
	if err := eps[0].Send(2, 4, []float64{4}); err != nil {
		t.Fatal(err)
	}
	if got, ok := recvTimes(t, eps[2], 0, 4, time.Second); !ok || got[0] != 4 {
		t.Fatalf("partition did not heal: %v %v", got, ok)
	}
}

// TestFaultyHealClearsEverything: Heal drops all link faults and partitions
// at once (the operator's "the network is fine again" switch).
func TestFaultyHealClearsEverything(t *testing.T) {
	eps := faultyMemWorld(t, 2, FaultPlan{
		Seed:       6,
		LinkFaults: map[[2]int]LinkFault{{0, 1}: {Sever: true}},
		Partitions: []Partition{{Ranks: []int{1}, From: 0}}, // never heals on its own
	})
	if err := eps[0].Send(1, 1, nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := recvTimes(t, eps[1], 0, 1, 50*time.Millisecond); ok {
		t.Fatal("severed+partitioned link delivered")
	}
	eps[0].Heal()
	if err := eps[0].Send(1, 2, []float64{7}); err != nil {
		t.Fatal(err)
	}
	if got, ok := recvTimes(t, eps[1], 0, 2, time.Second); !ok || got[0] != 7 {
		t.Fatalf("Heal did not restore the link: %v %v", got, ok)
	}
}

// TestNewFaultyEndpointPartition: the single-endpoint constructor (the
// deployment shape preduce-live uses: each process wraps only its own
// transport) applies a partition from the wrapped rank's perspective —
// traffic to and from the other side is dropped while the window is active.
func TestNewFaultyEndpointPartition(t *testing.T) {
	mems := NewMem(2)
	ep, err := NewFaultyEndpoint(mems[1], FaultPlan{
		Seed:       7,
		Partitions: []Partition{{Ranks: []int{1}, From: 0, Until: 300 * time.Millisecond}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Outbound across the cut: dropped at the wrapped endpoint.
	if err := ep.Send(0, 1, []float64{1}); err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 4)
	if _, err := mems[0].RecvIntoTimeout(1, 1, buf, 50*time.Millisecond); err == nil {
		t.Fatal("endpoint partition let outbound traffic through")
	} else if !IsTimeout(err) {
		t.Fatal(err)
	}
	time.Sleep(350 * time.Millisecond)
	if err := ep.Send(0, 2, []float64{2}); err != nil {
		t.Fatal(err)
	}
	if n, err := mems[0].RecvIntoTimeout(1, 2, buf, time.Second); err != nil || n != 1 || buf[0] != 2 {
		t.Fatalf("healed endpoint partition: n=%d err=%v", n, err)
	}

	// Malformed plans are rejected by the endpoint constructor too.
	if _, err := NewFaultyEndpoint(mems[1], FaultPlan{DropRate: 2}); err == nil {
		t.Fatal("bad endpoint plan accepted")
	}
}

// TestRecvIntoTimeoutSemantics: a bounded receive delivers a waiting message
// immediately, fails with ErrTimeout (carrying the peer and tag) when none
// arrives, and the helper degrades to an unbounded receive for timeout <= 0.
func TestRecvIntoTimeoutSemantics(t *testing.T) {
	mems := NewMem(2)
	if err := mems[0].Send(1, 9, []float64{4.5}); err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 2)
	if n, err := mems[1].RecvIntoTimeout(0, 9, buf, 50*time.Millisecond); err != nil || n != 1 || buf[0] != 4.5 {
		t.Fatalf("waiting message not delivered: n=%d err=%v", n, err)
	}
	start := time.Now()
	_, err := mems[1].RecvIntoTimeout(0, 10, buf, 80*time.Millisecond)
	if !IsTimeout(err) {
		t.Fatalf("want timeout, got %v", err)
	}
	var te *TimeoutError
	if !errors.As(err, &te) || te.Peer != 0 || te.Tag != 10 {
		t.Fatalf("timeout error lacks context: %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("timeout wildly overshot")
	}
	// RecvIntoDeadline with timeout <= 0 must still deliver (unbounded path).
	if err := mems[0].Send(1, 11, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if n, err := RecvIntoDeadline(mems[1], 0, 11, buf, 0); err != nil || n != 1 {
		t.Fatalf("unbounded fallback: n=%d err=%v", n, err)
	}
}
