package transport

import (
	"encoding/binary"
	"net"
	"sync"
	"testing"
	"time"
)

// fakePeer dials each listed (rank, addr) target and completes the mesh
// hello as rank `as`, returning one raw connection per target. It stands in
// for a real endpoint so tests can write arbitrary bytes — corrupt frames,
// or nothing at all (a paused process).
func fakePeer(t *testing.T, as int, targets map[int]string) map[int]net.Conn {
	t.Helper()
	conns := make(map[int]net.Conn, len(targets))
	for rank, addr := range targets {
		// Retry while the target's listener comes up, as real mesh
		// formation does.
		c, err := dialRetry(addr, time.Now().Add(10*time.Second))
		if err != nil {
			t.Fatalf("fake rank %d dial rank %d: %v", as, rank, err)
		}
		var hello [4]byte
		binary.LittleEndian.PutUint32(hello[:], uint32(as))
		if _, err := c.Write(hello[:]); err != nil {
			t.Fatalf("fake rank %d hello to rank %d: %v", as, rank, err)
		}
		t.Cleanup(func() { c.Close() })
		conns[rank] = c
	}
	return conns
}

// startPartialTCPWorld starts real endpoints for ranks [0, real) of an
// n-rank world whose remaining ranks the caller will fake with fakePeer.
// The fake dialer runs concurrently with mesh formation, as a real rank
// would.
func startPartialTCPWorld(t *testing.T, n, real int, opts TCPOptions, fake func(addrs []string)) []*TCP {
	t.Helper()
	addrs := freeAddrs(t, n)
	eps := make([]*TCP, real)
	errs := make([]error, real)
	var wg sync.WaitGroup
	for i := 0; i < real; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			eps[i], errs[i] = NewTCPOpts(i, addrs, opts)
		}()
	}
	fake(addrs)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, ep := range eps {
			ep.Close()
		}
	})
	return eps
}

// TestTCPCorruptFrameFailsOnlySender: a frame whose payload fails the CRC
// check condemns the sending peer alone; traffic between the other ranks is
// unaffected.
func TestTCPCorruptFrameFailsOnlySender(t *testing.T) {
	var conns map[int]net.Conn
	eps := startPartialTCPWorld(t, 3, 2, TCPOptions{}, func(addrs []string) {
		conns = fakePeer(t, 2, map[int]string{0: addrs[0], 1: addrs[1]})
	})

	// A well-formed frame first: the connection itself is good.
	if _, err := conns[0].Write(EncodeFrame(100, []float64{1})); err != nil {
		t.Fatal(err)
	}
	if got, err := eps[0].Recv(2, 100); err != nil || got[0] != 1 {
		t.Fatalf("pristine frame from fake peer: %v %v", got, err)
	}

	// Now a frame with one payload bit flipped after encoding.
	bad := EncodeFrame(101, []float64{2, 3})
	bad[frameHeaderSize+3] ^= 0x40
	if _, err := conns[0].Write(bad); err != nil {
		t.Fatal(err)
	}

	// Rank 0 must declare peer 2 (and only peer 2) down.
	deadline := time.Now().Add(5 * time.Second)
	for {
		down := eps[0].DownPeers()
		if len(down) == 1 && down[0] == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("corrupt frame not isolated to sender: down=%v", down)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Rank 1 saw no corruption and keeps peer 2; rank 0 <-> 1 still works.
	if down := eps[1].DownPeers(); len(down) != 0 {
		t.Fatalf("uninvolved rank condemned peers: %v", down)
	}
	if err := eps[0].Send(1, 102, []float64{7}); err != nil {
		t.Fatalf("survivor send: %v", err)
	}
	if got, err := eps[1].Recv(0, 102); err != nil || got[0] != 7 {
		t.Fatalf("survivor recv: %v %v", got, err)
	}
}

// TestTCPPausedPeerDetectedWithinTimeout pins the failure detector's
// latency: a peer that stops sending entirely (a paused process — its
// socket stays open, heartbeat writes to it still succeed) is detected
// within one HeartbeatTimeout plus two sweep intervals. The staleness
// verdict for every peer is taken against a single clock reading at the
// top of each sweep, so a slow probe write to one peer cannot defer
// another's detection.
func TestTCPPausedPeerDetectedWithinTimeout(t *testing.T) {
	const (
		interval = 25 * time.Millisecond
		timeout  = 200 * time.Millisecond
	)
	eps := startPartialTCPWorld(t, 2, 1, TCPOptions{
		HeartbeatInterval: interval,
		HeartbeatTimeout:  timeout,
	}, func(addrs []string) {
		fakePeer(t, 1, map[int]string{0: addrs[0]})
	})
	start := time.Now()

	// The fake peer never writes a byte after the hello. Poll for the
	// detection and bound its latency from both sides.
	var detected time.Duration
	for {
		if down := eps[0].DownPeers(); len(down) == 1 && down[0] == 1 {
			detected = time.Since(start)
			break
		}
		if time.Since(start) > 5*time.Second {
			t.Fatal("paused peer never detected")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if detected < timeout {
		t.Fatalf("peer condemned after %v, before the %v timeout elapsed", detected, timeout)
	}
	if limit := timeout + 2*interval + 150*time.Millisecond; detected > limit {
		t.Fatalf("detection took %v, want within %v (one timeout + sweep slack)", detected, limit)
	}
}
