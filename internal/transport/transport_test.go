package transport

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

func TestMemSendRecv(t *testing.T) {
	eps := NewMem(3)
	if err := eps[0].Send(1, 7, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	got, err := eps[1].Recv(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestMemRecvBlocksUntilSend(t *testing.T) {
	eps := NewMem(2)
	done := make(chan []float64, 1)
	go func() {
		p, err := eps[1].Recv(0, 1)
		if err != nil {
			t.Error(err)
		}
		done <- p
	}()
	time.Sleep(10 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("Recv returned before Send")
	default:
	}
	if err := eps[0].Send(1, 1, []float64{42}); err != nil {
		t.Fatal(err)
	}
	p := <-done
	if p[0] != 42 {
		t.Fatalf("got %v", p)
	}
}

func TestMemPayloadCopied(t *testing.T) {
	eps := NewMem(2)
	payload := []float64{1}
	if err := eps[0].Send(1, 1, payload); err != nil {
		t.Fatal(err)
	}
	payload[0] = 99 // mutation after Send must not affect delivery
	got, err := eps[1].Recv(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Fatalf("payload aliased: %v", got)
	}
}

func TestMemTagMatching(t *testing.T) {
	eps := NewMem(2)
	eps[0].Send(1, 2, []float64{2})
	eps[0].Send(1, 1, []float64{1})
	got, err := eps[1].Recv(0, 1)
	if err != nil || got[0] != 1 {
		t.Fatalf("tag 1: %v %v", got, err)
	}
	got, err = eps[1].Recv(0, 2)
	if err != nil || got[0] != 2 {
		t.Fatalf("tag 2: %v %v", got, err)
	}
}

func TestMemSelfSend(t *testing.T) {
	eps := NewMem(1)
	if err := eps[0].Send(0, 5, []float64{3.14}); err != nil {
		t.Fatal(err)
	}
	got, err := eps[0].Recv(0, 5)
	if err != nil || got[0] != 3.14 {
		t.Fatalf("self-send: %v %v", got, err)
	}
}

func TestMemDuplicateTagRejected(t *testing.T) {
	eps := NewMem(2)
	if err := eps[0].Send(1, 1, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := eps[0].Send(1, 1, []float64{2}); err == nil {
		t.Fatal("duplicate (from,tag) accepted while first is undelivered")
	}
}

func TestMemCloseFailsPendingRecv(t *testing.T) {
	eps := NewMem(2)
	errc := make(chan error, 1)
	go func() {
		_, err := eps[1].Recv(0, 1)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	eps[1].Close()
	if err := <-errc; err != ErrClosed {
		t.Fatalf("got %v, want ErrClosed", err)
	}
	if err := eps[0].Send(1, 2, nil); err != ErrClosed {
		t.Fatalf("send to closed: %v", err)
	}
}

func TestMemRangeChecks(t *testing.T) {
	eps := NewMem(2)
	if err := eps[0].Send(5, 1, nil); err == nil {
		t.Fatal("out-of-range send accepted")
	}
	if _, err := eps[0].Recv(-1, 1); err == nil {
		t.Fatal("out-of-range recv accepted")
	}
}

func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

func startTCPWorld(t *testing.T, n int) []*TCP {
	t.Helper()
	addrs := freeAddrs(t, n)
	eps := make([]*TCP, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			eps[i], errs[i] = NewTCP(i, addrs)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, ep := range eps {
			ep.Close()
		}
	})
	return eps
}

func TestTCPMesh(t *testing.T) {
	eps := startTCPWorld(t, 3)
	// Every ordered pair exchanges a message.
	for from := 0; from < 3; from++ {
		for to := 0; to < 3; to++ {
			payload := []float64{float64(from*10 + to)}
			if err := eps[from].Send(to, uint64(from*3+to), payload); err != nil {
				t.Fatalf("send %d->%d: %v", from, to, err)
			}
		}
	}
	for from := 0; from < 3; from++ {
		for to := 0; to < 3; to++ {
			got, err := eps[to].Recv(from, uint64(from*3+to))
			if err != nil {
				t.Fatalf("recv %d->%d: %v", from, to, err)
			}
			if got[0] != float64(from*10+to) {
				t.Fatalf("recv %d->%d: got %v", from, to, got)
			}
		}
	}
}

func TestTCPLargePayload(t *testing.T) {
	eps := startTCPWorld(t, 2)
	payload := make([]float64, 100_000)
	for i := range payload {
		payload[i] = float64(i) * 0.5
	}
	if err := eps[0].Send(1, 9, payload); err != nil {
		t.Fatal(err)
	}
	got, err := eps[1].Recv(0, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range payload {
		if got[i] != payload[i] {
			t.Fatalf("element %d: %v != %v", i, got[i], payload[i])
		}
	}
}

func TestTCPInvalidRank(t *testing.T) {
	if _, err := NewTCP(3, []string{"a", "b"}); err == nil {
		t.Fatal("invalid rank accepted")
	}
	if _, err := NewTCP(-1, []string{"a"}); err == nil {
		t.Fatal("negative rank accepted")
	}
}

func TestTCPConcurrentSenders(t *testing.T) {
	eps := startTCPWorld(t, 2)
	const msgs = 50
	var wg sync.WaitGroup
	for i := 0; i < msgs; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := eps[0].Send(1, uint64(i), []float64{float64(i)}); err != nil {
				t.Errorf("send %d: %v", i, err)
			}
		}()
	}
	wg.Wait()
	for i := 0; i < msgs; i++ {
		got, err := eps[1].Recv(0, uint64(i))
		if err != nil || got[0] != float64(i) {
			t.Fatalf("msg %d: %v %v", i, got, err)
		}
	}
}

func TestTCPSizeRank(t *testing.T) {
	eps := startTCPWorld(t, 2)
	for i, ep := range eps {
		if ep.Rank() != i || ep.Size() != 2 {
			t.Fatalf("rank/size: %d/%d", ep.Rank(), ep.Size())
		}
	}
}

func ExampleNewMem() {
	eps := NewMem(2)
	eps[0].Send(1, 1, []float64{1, 2})
	got, _ := eps[1].Recv(0, 1)
	fmt.Println(got)
	// Output: [1 2]
}
