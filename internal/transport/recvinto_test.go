package transport

import (
	"errors"
	"sync"
	"testing"
)

// recvIntoWorld builds a 2-endpoint world of the named kind and returns the
// generic Transport views (rank 0 and rank 1).
func recvIntoWorld(t *testing.T, kind string) (Transport, Transport) {
	t.Helper()
	switch kind {
	case "mem":
		eps := NewMem(2)
		return eps[0], eps[1]
	case "tcp":
		eps := startTCPWorld(t, 2)
		return eps[0], eps[1]
	case "faulty":
		mem := NewMem(2)
		inner := []Transport{mem[0], mem[1]}
		eps, err := NewFaultyWorld(inner, FaultPlan{})
		if err != nil {
			t.Fatal(err)
		}
		return eps[0], eps[1]
	default:
		t.Fatalf("unknown transport kind %q", kind)
		return nil, nil
	}
}

// TestRecvIntoAcrossTransports pins the RecvInto contract on every transport
// implementation: exact-size buffers fill completely, oversized buffers
// report the shorter payload length, undersized buffers fail with
// ErrShortBuffer (and consume the message), and empty payloads are legal.
func TestRecvIntoAcrossTransports(t *testing.T) {
	for _, kind := range []string{"mem", "tcp", "faulty"} {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			a, b := recvIntoWorld(t, kind)

			// Exact-size buffer.
			if err := a.Send(1, 1, []float64{1, 2, 3}); err != nil {
				t.Fatal(err)
			}
			dst := make([]float64, 3)
			n, err := b.RecvInto(0, 1, dst)
			if err != nil || n != 3 {
				t.Fatalf("exact: n=%d err=%v", n, err)
			}
			if dst[0] != 1 || dst[1] != 2 || dst[2] != 3 {
				t.Fatalf("exact: dst=%v", dst)
			}

			// Oversized buffer: n reports the payload length, the tail is
			// untouched.
			if err := a.Send(1, 2, []float64{7, 8}); err != nil {
				t.Fatal(err)
			}
			long := []float64{-1, -1, -1, -1}
			n, err = b.RecvInto(0, 2, long)
			if err != nil || n != 2 {
				t.Fatalf("long: n=%d err=%v", n, err)
			}
			if long[0] != 7 || long[1] != 8 || long[2] != -1 || long[3] != -1 {
				t.Fatalf("long: dst=%v", long)
			}

			// Undersized buffer: typed error, message consumed (a retry with
			// the same tag must not see it again).
			if err := a.Send(1, 3, []float64{1, 2, 3, 4}); err != nil {
				t.Fatal(err)
			}
			if _, err := b.RecvInto(0, 3, make([]float64, 2)); !errors.Is(err, ErrShortBuffer) {
				t.Fatalf("short: err=%v, want ErrShortBuffer", err)
			}
			// The next message on the same tag arrives cleanly.
			if err := a.Send(1, 3, []float64{42}); err != nil {
				t.Fatal(err)
			}
			one := make([]float64, 1)
			if n, err := b.RecvInto(0, 3, one); err != nil || n != 1 || one[0] != 42 {
				t.Fatalf("after short: n=%d dst=%v err=%v", n, one, err)
			}

			// Empty payload into a nil buffer (the Barrier wire format).
			if err := a.Send(1, 4, nil); err != nil {
				t.Fatal(err)
			}
			if n, err := b.RecvInto(0, 4, nil); err != nil || n != 0 {
				t.Fatalf("empty: n=%d err=%v", n, err)
			}
		})
	}
}

// TestRecvIntoShortBufferBlocked covers the waiter path (receiver parked
// before the send) for the short-buffer error, which the pending-queue path
// above does not reach.
func TestRecvIntoShortBufferBlocked(t *testing.T) {
	eps := NewMem(2)
	errc := make(chan error, 1)
	ready := make(chan struct{})
	go func() {
		close(ready)
		_, err := eps[1].RecvInto(0, 9, make([]float64, 1))
		errc <- err
	}()
	<-ready
	if err := eps[0].Send(1, 9, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("err=%v, want ErrShortBuffer", err)
	}
}

// TestRecvIntoSteadyStateAllocFree is the data-plane allocation gate at the
// transport layer: after warmup, a Send/RecvInto round trip over Mem touches
// only pooled memory.
func TestRecvIntoSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	eps := NewMem(2)
	payload := make([]float64, 4096)
	dst := make([]float64, 4096)
	step := func() {
		if err := eps[0].Send(1, 7, payload); err != nil {
			t.Fatal(err)
		}
		if _, err := eps[1].RecvInto(0, 7, dst); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 16; i++ {
		step() // warm the pools
	}
	if allocs := testing.AllocsPerRun(100, step); allocs > 0 {
		t.Fatalf("steady-state Send/RecvInto allocates %.1f times per round trip", allocs)
	}
}

// TestRecvIntoConcurrent exercises the direct-delivery fast path under -race:
// many goroutine pairs stream segments through one endpoint pair.
func TestRecvIntoConcurrent(t *testing.T) {
	eps := NewMem(2)
	const pairs, rounds = 8, 50
	var wg sync.WaitGroup
	for p := 0; p < pairs; p++ {
		p := p
		wg.Add(2)
		go func() {
			defer wg.Done()
			buf := make([]float64, 64)
			for r := 0; r < rounds; r++ {
				for i := range buf {
					buf[i] = float64(p*rounds + r)
				}
				if err := eps[0].Send(1, uint64(p*rounds+r), buf); err != nil {
					t.Error(err)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			dst := make([]float64, 64)
			for r := 0; r < rounds; r++ {
				n, err := eps[1].RecvInto(0, uint64(p*rounds+r), dst)
				if err != nil || n != 64 {
					t.Errorf("pair %d round %d: n=%d err=%v", p, r, n, err)
					return
				}
				if dst[0] != float64(p*rounds+r) {
					t.Errorf("pair %d round %d: got %v", p, r, dst[0])
					return
				}
			}
		}()
	}
	wg.Wait()
}
