package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"time"
)

// TCP is a Transport over stdlib TCP sockets with a full-mesh topology:
// rank i listens on addrs[i], dials every lower rank, and accepts
// connections from every higher rank. Frames are length-prefixed binary:
// 8-byte tag, 4-byte element count, then count float64s, little-endian.
type TCP struct {
	rank  int
	size  int
	box   *mailbox
	ln    net.Listener
	conns []*tcpConn // index by peer rank; nil at own rank
	mu    sync.Mutex
	done  bool
}

type tcpConn struct {
	mu sync.Mutex
	c  net.Conn
}

// NewTCP creates rank's endpoint in a world defined by addrs (one listen
// address per rank, e.g. "127.0.0.1:9001"). It blocks until the full mesh
// is connected, so all ranks must be starting concurrently.
func NewTCP(rank int, addrs []string) (*TCP, error) {
	n := len(addrs)
	if n < 1 || rank < 0 || rank >= n {
		return nil, fmt.Errorf("transport: rank %d invalid for world of %d", rank, n)
	}
	t := &TCP{rank: rank, size: n, box: newMailbox(), conns: make([]*tcpConn, n)}

	ln, err := net.Listen("tcp", addrs[rank])
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addrs[rank], err)
	}
	t.ln = ln

	var wg sync.WaitGroup
	errs := make(chan error, n)

	// Accept from higher ranks.
	expect := n - 1 - rank
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < expect; i++ {
			c, err := ln.Accept()
			if err != nil {
				errs <- err
				return
			}
			var hello [4]byte
			if _, err := io.ReadFull(c, hello[:]); err != nil {
				errs <- err
				return
			}
			peer := int(binary.LittleEndian.Uint32(hello[:]))
			if peer <= rank || peer >= n {
				errs <- fmt.Errorf("transport: bad hello from rank %d", peer)
				return
			}
			t.attach(peer, c)
		}
	}()

	// Dial lower ranks, retrying while peers are still binding their
	// listeners (world members start concurrently).
	for peer := 0; peer < rank; peer++ {
		peer := peer
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := dialRetry(addrs[peer])
			if err != nil {
				errs <- fmt.Errorf("transport: dial rank %d: %w", peer, err)
				return
			}
			var hello [4]byte
			binary.LittleEndian.PutUint32(hello[:], uint32(rank))
			if _, err := c.Write(hello[:]); err != nil {
				errs <- err
				return
			}
			t.attach(peer, c)
		}()
	}

	wg.Wait()
	select {
	case err := <-errs:
		t.Close()
		return nil, err
	default:
	}
	return t, nil
}

// dialRetry dials addr, retrying for up to ~5 seconds while the peer's
// listener comes up.
func dialRetry(addr string) (net.Conn, error) {
	var err error
	for i := 0; i < 250; i++ {
		var c net.Conn
		c, err = net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			return c, nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return nil, err
}

func (t *TCP) attach(peer int, c net.Conn) {
	t.mu.Lock()
	t.conns[peer] = &tcpConn{c: c}
	t.mu.Unlock()
	go t.readLoop(peer, c)
}

func (t *TCP) readLoop(peer int, c net.Conn) {
	var hdr [12]byte
	for {
		if _, err := io.ReadFull(c, hdr[:]); err != nil {
			t.box.close() // fail pending receives; Close or peer loss
			return
		}
		tag := binary.LittleEndian.Uint64(hdr[0:8])
		count := binary.LittleEndian.Uint32(hdr[8:12])
		buf := make([]byte, 8*int(count))
		if _, err := io.ReadFull(c, buf); err != nil {
			t.box.close()
			return
		}
		payload := make([]float64, count)
		for i := range payload {
			payload[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
		}
		if err := t.box.deliver(message{from: peer, tag: tag, payload: payload}); err != nil {
			return
		}
	}
}

// Rank implements Transport.
func (t *TCP) Rank() int { return t.rank }

// Size implements Transport.
func (t *TCP) Size() int { return t.size }

// Send implements Transport.
func (t *TCP) Send(to int, tag uint64, payload []float64) error {
	if to < 0 || to >= t.size {
		return fmt.Errorf("transport: rank %d out of range", to)
	}
	if to == t.rank {
		cp := make([]float64, len(payload))
		copy(cp, payload)
		return t.box.deliver(message{from: t.rank, tag: tag, payload: cp})
	}
	t.mu.Lock()
	tc := t.conns[to]
	closed := t.done
	t.mu.Unlock()
	if closed || tc == nil {
		return ErrClosed
	}

	buf := make([]byte, 12+8*len(payload))
	binary.LittleEndian.PutUint64(buf[0:8], tag)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(len(payload)))
	for i, v := range payload {
		binary.LittleEndian.PutUint64(buf[12+8*i:], math.Float64bits(v))
	}
	tc.mu.Lock()
	defer tc.mu.Unlock()
	_, err := tc.c.Write(buf)
	return err
}

// Recv implements Transport.
func (t *TCP) Recv(from int, tag uint64) ([]float64, error) {
	if from < 0 || from >= t.size {
		return nil, fmt.Errorf("transport: rank %d out of range", from)
	}
	return t.box.receive(from, tag)
}

// Close implements Transport.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return nil
	}
	t.done = true
	t.mu.Unlock()

	if t.ln != nil {
		t.ln.Close()
	}
	for _, tc := range t.conns {
		if tc != nil {
			tc.c.Close()
		}
	}
	t.box.close()
	return nil
}
