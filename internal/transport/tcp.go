package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"partialreduce/internal/bufpool"
)

// TCPOptions tune a TCP endpoint's failure-detection behavior. The zero
// value selects the defaults noted per field.
type TCPOptions struct {
	// MeshTimeout bounds the whole mesh formation (listen + accept + dial).
	// If some rank never starts, NewTCP fails after this long naming the
	// missing peer(s) instead of blocking forever. Default 15s.
	MeshTimeout time.Duration
	// HeartbeatInterval enables liveness probing: every interval the endpoint
	// sends a heartbeat frame to each peer. Zero disables heartbeats (peer
	// loss is then detected only by connection errors — which still covers
	// process crashes, whose sockets the OS closes).
	HeartbeatInterval time.Duration
	// HeartbeatTimeout declares a peer dead when nothing (data or heartbeat)
	// has arrived from it for this long. Default 10×HeartbeatInterval.
	HeartbeatTimeout time.Duration
	// MaxFrameElems bounds the element count accepted from the wire
	// (default DefaultMaxFrameElems). A frame advertising more is treated as
	// peer corruption and fails that peer only.
	MaxFrameElems int
}

func (o TCPOptions) withDefaults() TCPOptions {
	if o.MeshTimeout <= 0 {
		o.MeshTimeout = 15 * time.Second
	}
	if o.HeartbeatInterval > 0 && o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 10 * o.HeartbeatInterval
	}
	if o.MaxFrameElems <= 0 {
		o.MaxFrameElems = DefaultMaxFrameElems
	}
	return o
}

// TCP is a Transport over stdlib TCP sockets with a full-mesh topology:
// rank i listens on addrs[i], dials every lower rank, and accepts
// connections from every higher rank. Frames are length-prefixed binary:
// 8-byte tag, 4-byte element count, then count float64s, little-endian.
//
// Peer loss is isolated: a broken or heartbeat-stale connection fails only
// operations involving that peer (with *PeerDownError); the rest of the mesh
// keeps working. TCP implements PeerFailer (RevivePeer is a no-op: a real
// rejoin needs a fresh dial, i.e. a new endpoint) and OpAborter.
type TCP struct {
	rank     int
	size     int
	box      *mailbox
	ln       net.Listener
	opts     TCPOptions
	conns    []*tcpConn     // index by peer rank; nil at own rank
	lastSeen []atomic.Int64 // unix-nano of the last frame per peer
	mu       sync.Mutex
	down     []bool
	done     bool
	stopHB   chan struct{}
	hbWG     sync.WaitGroup
}

type tcpConn struct {
	mu sync.Mutex
	c  net.Conn
}

// NewTCP creates rank's endpoint in a world defined by addrs (one listen
// address per rank, e.g. "127.0.0.1:9001") with default options. It blocks
// until the full mesh is connected — all ranks must be starting
// concurrently — but no longer than the default mesh timeout.
func NewTCP(rank int, addrs []string) (*TCP, error) {
	return NewTCPOpts(rank, addrs, TCPOptions{})
}

// NewTCPOpts is NewTCP with explicit failure-detection options.
func NewTCPOpts(rank int, addrs []string, opts TCPOptions) (*TCP, error) {
	n := len(addrs)
	if n < 1 || rank < 0 || rank >= n {
		return nil, fmt.Errorf("transport: rank %d invalid for world of %d", rank, n)
	}
	opts = opts.withDefaults()
	t := &TCP{
		rank: rank, size: n, box: newMailbox(), opts: opts,
		conns:    make([]*tcpConn, n),
		lastSeen: make([]atomic.Int64, n),
		down:     make([]bool, n),
		stopHB:   make(chan struct{}),
	}

	ln, err := net.Listen("tcp", addrs[rank])
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addrs[rank], err)
	}
	t.ln = ln
	deadline := time.Now().Add(opts.MeshTimeout)
	if tl, ok := ln.(*net.TCPListener); ok {
		tl.SetDeadline(deadline)
	}

	var wg sync.WaitGroup
	errs := make(chan error, n)

	// Accept from higher ranks, under the listener deadline: if a higher
	// rank never starts, Accept times out instead of blocking forever.
	expect := n - 1 - rank
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < expect; i++ {
			c, err := ln.Accept()
			if err != nil {
				errs <- fmt.Errorf("accept: %w", err)
				return
			}
			c.SetReadDeadline(deadline)
			var hello [4]byte
			if _, err := io.ReadFull(c, hello[:]); err != nil {
				errs <- fmt.Errorf("hello: %w", err)
				return
			}
			c.SetReadDeadline(time.Time{})
			peer := int(binary.LittleEndian.Uint32(hello[:]))
			if peer <= rank || peer >= n {
				errs <- fmt.Errorf("bad hello from rank %d", peer)
				return
			}
			t.attach(peer, c)
		}
	}()

	// Dial lower ranks, retrying while peers are still binding their
	// listeners (world members start concurrently), up to the deadline.
	for peer := 0; peer < rank; peer++ {
		peer := peer
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := dialRetry(addrs[peer], deadline)
			if err != nil {
				errs <- fmt.Errorf("dial rank %d: %w", peer, err)
				return
			}
			var hello [4]byte
			binary.LittleEndian.PutUint32(hello[:], uint32(rank))
			if _, err := c.Write(hello[:]); err != nil {
				errs <- fmt.Errorf("hello to rank %d: %w", peer, err)
				return
			}
			t.attach(peer, c)
		}()
	}

	wg.Wait()
	select {
	case err := <-errs:
		missing := t.missingPeers()
		t.Close()
		if len(missing) > 0 {
			return nil, fmt.Errorf("transport: rank %d mesh formation failed (missing peers %v after %v): %w",
				rank, missing, opts.MeshTimeout, err)
		}
		return nil, fmt.Errorf("transport: rank %d mesh formation failed: %w", rank, err)
	default:
	}
	// Mesh complete: clear the formation deadline so Accept (unused from here
	// on) and established conns are unencumbered.
	if tl, ok := ln.(*net.TCPListener); ok {
		tl.SetDeadline(time.Time{})
	}
	now := time.Now().UnixNano()
	for p := range t.lastSeen {
		t.lastSeen[p].Store(now)
	}
	if opts.HeartbeatInterval > 0 {
		t.hbWG.Add(1)
		go t.heartbeatLoop()
	}
	return t, nil
}

// missingPeers lists the ranks this endpoint never connected to.
func (t *TCP) missingPeers() []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	var missing []int
	for p := 0; p < t.size; p++ {
		if p != t.rank && t.conns[p] == nil {
			missing = append(missing, p)
		}
	}
	sort.Ints(missing)
	return missing
}

// dialRetry dials addr, retrying while the peer's listener comes up, until
// deadline.
func dialRetry(addr string, deadline time.Time) (net.Conn, error) {
	var err error
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			if err == nil {
				err = fmt.Errorf("timed out")
			}
			return nil, err
		}
		step := time.Second
		if remain < step {
			step = remain
		}
		var c net.Conn
		c, err = net.DialTimeout("tcp", addr, step)
		if err == nil {
			return c, nil
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func (t *TCP) attach(peer int, c net.Conn) {
	t.mu.Lock()
	t.conns[peer] = &tcpConn{c: c}
	t.mu.Unlock()
	go t.readLoop(peer, c)
}

// readLoop decodes frames from peer. Any error — connection loss, a corrupt
// header, an oversized count — fails that peer only: receives targeting it
// get *PeerDownError while the rest of the mesh stays live.
func (t *TCP) readLoop(peer int, c net.Conn) {
	var hdr [frameHeaderSize]byte
	for {
		if _, err := io.ReadFull(c, hdr[:]); err != nil {
			t.peerLost(peer)
			return
		}
		tag, count, crc := parseFrameHeader(hdr[:])
		t.lastSeen[peer].Store(time.Now().UnixNano())
		if tag == hbTag && count == 0 {
			continue // heartbeat: liveness only, nothing to deliver
		}
		if err := checkFrameCount(count, t.opts.MaxFrameElems); err != nil {
			// The wire is untrusted: a corrupt count would otherwise drive a
			// multi-GiB allocation. Treat the peer as failed.
			t.peerLost(peer)
			return
		}
		// Both the wire buffer and the decoded payload come from the pool;
		// the wire buffer is recycled immediately, the payload when an
		// into-receive consumes it.
		buf := bufpool.GetBytes(8 * int(count))
		if _, err := io.ReadFull(c, buf); err != nil {
			bufpool.PutBytes(buf)
			t.peerLost(peer)
			return
		}
		if err := checkFrameCRC(buf, crc); err != nil {
			// A corrupt payload fails only this peer: once frame boundaries
			// are suspect, nothing further from this connection is usable,
			// but the rest of the mesh keeps working.
			bufpool.PutBytes(buf)
			t.peerLost(peer)
			return
		}
		payload := bufpool.GetFloat64(int(count))
		decodePayloadInto(payload, buf)
		bufpool.PutBytes(buf)
		if err := t.box.deliver(message{from: peer, tag: tag, payload: payload}); err != nil {
			bufpool.PutFloat64(payload)
			return
		}
	}
}

// peerLost marks peer dead unless the whole endpoint is closing (in which
// case Close's box.close already failed everything).
func (t *TCP) peerLost(peer int) {
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return
	}
	t.down[peer] = true
	tc := t.conns[peer]
	t.mu.Unlock()
	if tc != nil {
		tc.c.Close()
	}
	t.box.failPeer(peer)
}

// heartbeatLoop probes peers and declares the stale ones dead. Each sweep
// reads the clock exactly once and judges every peer's staleness against
// that single reading *before* any probe is written: a heartbeat write can
// block up to a full interval on a congested connection, and evaluating
// staleness against a clock captured before the blocking writes would skew
// later peers' deadlines by however long earlier writes stalled.
func (t *TCP) heartbeatLoop() {
	defer t.hbWG.Done()
	ticker := time.NewTicker(t.opts.HeartbeatInterval)
	defer ticker.Stop()
	hb := make([]byte, frameHeaderSize)
	putFrameHeader(hb, hbTag, 0, 0)
	stale := make([]bool, t.size)
	for {
		select {
		case <-t.stopHB:
			return
		case <-ticker.C:
		}
		// Phase 1: one clock read, all staleness verdicts.
		now := time.Now()
		for p := 0; p < t.size; p++ {
			stale[p] = p != t.rank &&
				now.UnixNano()-t.lastSeen[p].Load() > int64(t.opts.HeartbeatTimeout)
		}
		// Phase 2: condemn stale peers, probe the rest.
		for p := 0; p < t.size; p++ {
			if p == t.rank {
				continue
			}
			t.mu.Lock()
			tc := t.conns[p]
			dead := t.down[p] || t.done
			t.mu.Unlock()
			if dead || tc == nil {
				continue
			}
			if stale[p] {
				t.peerLost(p)
				continue
			}
			tc.mu.Lock()
			tc.c.SetWriteDeadline(now.Add(t.opts.HeartbeatInterval))
			_, err := tc.c.Write(hb)
			tc.c.SetWriteDeadline(time.Time{})
			tc.mu.Unlock()
			if err != nil {
				t.peerLost(p)
			}
		}
	}
}

// Rank implements Transport.
func (t *TCP) Rank() int { return t.rank }

// Size implements Transport.
func (t *TCP) Size() int { return t.size }

// Send implements Transport.
func (t *TCP) Send(to int, tag uint64, payload []float64) error {
	if to < 0 || to >= t.size {
		return fmt.Errorf("transport: rank %d out of range", to)
	}
	if to == t.rank {
		cp := bufpool.GetFloat64(len(payload))
		copy(cp, payload)
		if err := t.box.deliver(message{from: t.rank, tag: tag, payload: cp}); err != nil {
			bufpool.PutFloat64(cp)
			return err
		}
		return nil
	}
	t.mu.Lock()
	tc := t.conns[to]
	closed := t.done
	down := t.down[to]
	t.mu.Unlock()
	if closed || tc == nil {
		return ErrClosed
	}
	if down {
		return &PeerDownError{Peer: to}
	}

	// Encode into a pooled frame buffer sized up front, so the append
	// variant never grows it and the whole send path stays allocation-free.
	fb := bufpool.GetBytes(FrameLen(payload))
	buf := EncodeFrameInto(fb[:0], tag, payload)
	tc.mu.Lock()
	_, err := tc.c.Write(buf)
	tc.mu.Unlock()
	bufpool.PutBytes(fb)
	if err != nil {
		t.peerLost(to)
		return &PeerDownError{Peer: to}
	}
	return nil
}

// Recv implements Transport.
func (t *TCP) Recv(from int, tag uint64) ([]float64, error) {
	if from < 0 || from >= t.size {
		return nil, fmt.Errorf("transport: rank %d out of range", from)
	}
	return t.box.receive(from, tag)
}

// RecvInto implements Transport.
func (t *TCP) RecvInto(from int, tag uint64, dst []float64) (int, error) {
	if from < 0 || from >= t.size {
		return 0, fmt.Errorf("transport: rank %d out of range", from)
	}
	return t.box.receiveInto(from, tag, dst)
}

// RecvIntoTimeout implements DeadlineRecver.
func (t *TCP) RecvIntoTimeout(from int, tag uint64, dst []float64, timeout time.Duration) (int, error) {
	if from < 0 || from >= t.size {
		return 0, fmt.Errorf("transport: rank %d out of range", from)
	}
	if timeout <= 0 {
		return t.box.receiveInto(from, tag, dst)
	}
	return t.box.receiveIntoDeadline(from, tag, dst, timeout)
}

// PurgeOp implements OpPurger.
func (t *TCP) PurgeOp(op uint32) { t.box.purgeOp(op) }

// FailPeer implements PeerFailer: peer is declared dead and its connection
// torn down.
func (t *TCP) FailPeer(peer int) {
	if peer < 0 || peer >= t.size || peer == t.rank {
		return
	}
	t.peerLost(peer)
}

// RevivePeer implements PeerFailer. Over TCP a failed connection cannot be
// restored in place — a rejoining rank starts a fresh process and dials a new
// mesh — so RevivePeer only clears the local mark to keep the interface
// symmetric; data flow does not resume.
func (t *TCP) RevivePeer(peer int) {
	if peer < 0 || peer >= t.size {
		return
	}
	t.mu.Lock()
	t.down[peer] = false
	t.mu.Unlock()
	t.box.revivePeer(peer)
}

// AbortOp implements OpAborter.
func (t *TCP) AbortOp(op uint32) { t.box.abortOp(op, -1) }

// FailSelf implements SelfFailer: it severs every connection, so each peer's
// read loop observes this rank as down — the same thing the fabric would see
// if the process exited — and marks every peer down locally so this
// endpoint's own pending operations fail fast.
func (t *TCP) FailSelf() {
	for r := 0; r < t.size; r++ {
		if r != t.rank {
			t.peerLost(r)
		}
	}
}

// DownPeers returns the ranks this endpoint currently considers dead.
func (t *TCP) DownPeers() []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []int
	for p, d := range t.down {
		if d {
			out = append(out, p)
		}
	}
	return out
}

// Close implements Transport.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return nil
	}
	t.done = true
	t.mu.Unlock()
	close(t.stopHB)
	t.hbWG.Wait()

	if t.ln != nil {
		t.ln.Close()
	}
	for _, tc := range t.conns {
		if tc != nil {
			tc.c.Close()
		}
	}
	t.box.close()
	return nil
}
