// Package checkpoint serializes training state so long runs can stop and
// resume: model parameters, optimizer velocity, and iteration counters, in a
// small self-describing binary format (magic, version, sizes, little-endian
// float64 payloads with a checksum). The live and simulated runtimes share
// it; a checkpoint taken on one can seed the other.
package checkpoint

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"math"
)

const (
	magic   = 0x50524443 // "PRDC"
	version = 1
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// State is a snapshot of one worker's (or the cluster-average) training
// state.
type State struct {
	// Params is the flat model parameter vector.
	Params []float64
	// Velocity is the optimizer's momentum buffer (may be empty when the
	// optimizer is stateless).
	Velocity []float64
	// Iter is the iteration counter at snapshot time.
	Iter int64
	// Step is the optimizer's update counter (drives LR schedules).
	Step int64
}

// Validate reports whether the state is internally consistent.
func (s *State) Validate() error {
	if len(s.Params) == 0 {
		return fmt.Errorf("checkpoint: empty parameter vector")
	}
	if len(s.Velocity) != 0 && len(s.Velocity) != len(s.Params) {
		return fmt.Errorf("checkpoint: velocity length %d != params length %d",
			len(s.Velocity), len(s.Params))
	}
	if s.Iter < 0 || s.Step < 0 {
		return fmt.Errorf("checkpoint: negative counters")
	}
	return nil
}

// Write serializes s to w.
func Write(w io.Writer, s *State) error {
	if err := s.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	crc := crc64.New(crcTable)
	out := io.MultiWriter(bw, crc)

	hdr := []uint64{magic, version, uint64(len(s.Params)), uint64(len(s.Velocity)),
		uint64(s.Iter), uint64(s.Step)}
	for _, v := range hdr {
		if err := binary.Write(out, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := writeFloats(out, s.Params); err != nil {
		return err
	}
	if err := writeFloats(out, s.Velocity); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, crc.Sum64()); err != nil {
		return err
	}
	return bw.Flush()
}

// Read deserializes a State from r, verifying the checksum.
func Read(r io.Reader) (*State, error) {
	br := bufio.NewReader(r)
	crc := crc64.New(crcTable)
	in := io.TeeReader(br, crc)

	var hdr [6]uint64
	for i := range hdr {
		if err := binary.Read(in, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("checkpoint: short header: %w", err)
		}
	}
	if hdr[0] != magic {
		return nil, fmt.Errorf("checkpoint: bad magic %#x", hdr[0])
	}
	if hdr[1] != version {
		return nil, fmt.Errorf("checkpoint: unsupported version %d", hdr[1])
	}
	nParams, nVel := hdr[2], hdr[3]
	const maxLen = 1 << 31
	if nParams == 0 || nParams > maxLen || nVel > maxLen {
		return nil, fmt.Errorf("checkpoint: implausible sizes %d/%d", nParams, nVel)
	}
	if nVel != 0 && nVel != nParams {
		return nil, fmt.Errorf("checkpoint: velocity length %d != params length %d", nVel, nParams)
	}
	s := &State{
		Params:   make([]float64, nParams),
		Velocity: make([]float64, nVel),
		Iter:     int64(hdr[4]),
		Step:     int64(hdr[5]),
	}
	if err := readFloats(in, s.Params); err != nil {
		return nil, err
	}
	if err := readFloats(in, s.Velocity); err != nil {
		return nil, err
	}
	want := crc.Sum64()
	var got uint64
	if err := binary.Read(br, binary.LittleEndian, &got); err != nil {
		return nil, fmt.Errorf("checkpoint: missing checksum: %w", err)
	}
	if got != want {
		return nil, fmt.Errorf("checkpoint: checksum mismatch (corrupt file)")
	}
	return s, nil
}

func writeFloats(w io.Writer, xs []float64) error {
	buf := make([]byte, 8*4096)
	for len(xs) > 0 {
		n := min(len(xs), 4096)
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(xs[i]))
		}
		if _, err := w.Write(buf[:8*n]); err != nil {
			return err
		}
		xs = xs[n:]
	}
	return nil
}

func readFloats(r io.Reader, xs []float64) error {
	buf := make([]byte, 8*4096)
	for len(xs) > 0 {
		n := min(len(xs), 4096)
		if _, err := io.ReadFull(r, buf[:8*n]); err != nil {
			return fmt.Errorf("checkpoint: short payload: %w", err)
		}
		for i := 0; i < n; i++ {
			xs[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
		}
		xs = xs[n:]
	}
	return nil
}
