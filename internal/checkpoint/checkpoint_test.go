package checkpoint

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func randomState(rng *rand.Rand, n int, withVel bool) *State {
	s := &State{Params: make([]float64, n), Iter: rng.Int63n(1000), Step: rng.Int63n(1000)}
	for i := range s.Params {
		s.Params[i] = rng.NormFloat64()
	}
	if withVel {
		s.Velocity = make([]float64, n)
		for i := range s.Velocity {
			s.Velocity[i] = rng.NormFloat64()
		}
	}
	return s
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, withVel := range []bool{true, false} {
		s := randomState(rng, 10_000, withVel)
		var buf bytes.Buffer
		if err := Write(&buf, s); err != nil {
			t.Fatal(err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Iter != s.Iter || got.Step != s.Step {
			t.Fatalf("counters: %+v vs %+v", got, s)
		}
		for i := range s.Params {
			if got.Params[i] != s.Params[i] {
				t.Fatal("params mismatch")
			}
		}
		if len(got.Velocity) != len(s.Velocity) {
			t.Fatalf("velocity length %d vs %d", len(got.Velocity), len(s.Velocity))
		}
		for i := range s.Velocity {
			if got.Velocity[i] != s.Velocity[i] {
				t.Fatal("velocity mismatch")
			}
		}
	}
}

func TestSpecialFloats(t *testing.T) {
	s := &State{Params: []float64{math.Inf(1), math.Inf(-1), 0, -0.0, math.MaxFloat64, math.SmallestNonzeroFloat64}}
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.Params {
		if math.Float64bits(got.Params[i]) != math.Float64bits(s.Params[i]) {
			t.Fatalf("bit-level mismatch at %d", i)
		}
	}
}

func TestValidate(t *testing.T) {
	bad := []*State{
		{},
		{Params: []float64{1}, Velocity: []float64{1, 2}},
		{Params: []float64{1}, Iter: -1},
		{Params: []float64{1}, Step: -1},
	}
	for i, s := range bad {
		if s.Validate() == nil {
			t.Errorf("case %d: expected error", i)
		}
		var buf bytes.Buffer
		if Write(&buf, s) == nil {
			t.Errorf("case %d: Write accepted invalid state", i)
		}
	}
}

func TestCorruptionDetected(t *testing.T) {
	s := randomState(rand.New(rand.NewSource(2)), 100, true)
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)/2] ^= 0xFF
	if _, err := Read(bytes.NewReader(data)); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corruption not detected: %v", err)
	}
}

func TestTruncationDetected(t *testing.T) {
	s := randomState(rand.New(rand.NewSource(3)), 100, false)
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := Read(bytes.NewReader(data[:len(data)-9])); err == nil {
		t.Fatal("truncation not detected")
	}
	if _, err := Read(bytes.NewReader(data[:10])); err == nil {
		t.Fatal("header truncation not detected")
	}
}

func TestBadMagicAndVersion(t *testing.T) {
	s := randomState(rand.New(rand.NewSource(4)), 4, false)
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	bad := append([]byte{}, data...)
	bad[0] ^= 1
	if _, err := Read(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic not detected: %v", err)
	}
	bad = append([]byte{}, data...)
	bad[8] = 99 // version field
	if _, err := Read(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("bad version not detected: %v", err)
	}
}

// Property: any state round-trips bit-exactly.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8, withVel bool) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomState(rng, int(n)+1, withVel)
		var buf bytes.Buffer
		if err := Write(&buf, s); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if got.Iter != s.Iter || got.Step != s.Step || len(got.Params) != len(s.Params) {
			return false
		}
		for i := range s.Params {
			if got.Params[i] != s.Params[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
