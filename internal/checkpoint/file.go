package checkpoint

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// Durable on-disk checkpointing. A checkpoint is only useful if the crash
// it guards against cannot also destroy it, so WriteFile never modifies the
// current generation in place: the new state goes to a temp file in the
// same directory, is fsynced, the previous generation is rotated aside, and
// the temp file is renamed over the target — all steps after which a torn
// write leaves either the new generation, the previous one, or both.
// ReadFile is the matching recovery path: it falls back to the rotated
// generation when the primary is missing, truncated, or corrupt.

// PrevSuffix is appended to the checkpoint path to name the rotated
// previous generation.
const PrevSuffix = ".prev"

// WriteFile atomically persists s at path. The write sequence is:
//
//  1. serialize to path+".tmp" in the target directory (same filesystem,
//     so the final rename is atomic), fsync it, close it;
//  2. rotate an existing checkpoint to path+".prev" (replacing any older
//     previous generation);
//  3. rename the temp file onto path and fsync the directory.
//
// A crash at any point leaves a readable generation: before (3) the old
// checkpoint exists at path or path+".prev"; after (3) the new one is in
// place. The temp file is removed on error.
func WriteFile(path string, s *State) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: create temp: %w", err)
	}
	if err := Write(f, s); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: fsync temp: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: close temp: %w", err)
	}

	// Rotate the current generation aside. A missing current checkpoint
	// (first write) is fine; any other rename failure aborts before the
	// final rename so the current generation is never lost.
	if err := os.Rename(path, path+PrevSuffix); err != nil && !errors.Is(err, fs.ErrNotExist) {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: rotate previous: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: publish: %w", err)
	}
	return syncDir(filepath.Dir(path))
}

// ReadFile loads the checkpoint at path, falling back to the rotated
// previous generation (path+".prev") when the primary is missing or fails
// to decode — the torn-write case. It returns the state and the path it
// was actually read from; the error reports both failures when neither
// generation is readable.
func ReadFile(path string) (*State, string, error) {
	s, err := readOne(path)
	if err == nil {
		return s, path, nil
	}
	prev := path + PrevSuffix
	ps, perr := readOne(prev)
	if perr == nil {
		return ps, prev, nil
	}
	return nil, "", fmt.Errorf("checkpoint: primary %s: %v; previous %s: %v", path, err, prev, perr)
}

func readOne(path string) (*State, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// syncDir fsyncs a directory so the renames inside it are durable.
// Filesystems that refuse directory fsync (some network mounts) degrade
// gracefully: the rename sequence is still ordered, just not flushed.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	d.Sync()
	return nil
}
