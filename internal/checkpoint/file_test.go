package checkpoint

import (
	"os"
	"path/filepath"
	"testing"
)

func testState(iter int64) *State {
	n := 257
	s := &State{
		Params:   make([]float64, n),
		Velocity: make([]float64, n),
		Iter:     iter,
		Step:     iter,
	}
	for i := range s.Params {
		s.Params[i] = float64(iter)*1000 + float64(i)*0.5
		s.Velocity[i] = -float64(i)
	}
	return s
}

func sameState(t *testing.T, got, want *State) {
	t.Helper()
	if got.Iter != want.Iter || got.Step != want.Step {
		t.Fatalf("counters: got iter=%d step=%d, want iter=%d step=%d",
			got.Iter, got.Step, want.Iter, want.Step)
	}
	for i := range want.Params {
		if got.Params[i] != want.Params[i] {
			t.Fatalf("param %d: got %v want %v", i, got.Params[i], want.Params[i])
		}
	}
}

func TestWriteFileReadFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt")
	want := testState(7)
	if err := WriteFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, from, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if from != path {
		t.Fatalf("read from %q, want primary %q", from, path)
	}
	sameState(t, got, want)
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
}

// TestWriteFileRotation: the second write rotates the first generation to
// .prev, and both generations decode.
func TestWriteFileRotation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt")
	gen1, gen2 := testState(1), testState(2)
	if err := WriteFile(path, gen1); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, gen2); err != nil {
		t.Fatal(err)
	}
	cur, _, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sameState(t, cur, gen2)
	prev, err := readOne(path + PrevSuffix)
	if err != nil {
		t.Fatalf("previous generation unreadable: %v", err)
	}
	sameState(t, prev, gen1)
}

// TestTornWriteFallsBackToPrevious simulates a crash that tears the current
// checkpoint mid-file: ReadFile must reject the truncated primary (checksum
// or short read) and recover the previous generation.
func TestTornWriteFallsBackToPrevious(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt")
	gen1, gen2 := testState(1), testState(2)
	if err := WriteFile(path, gen1); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, gen2); err != nil {
		t.Fatal(err)
	}

	// Tear the primary: cut it in half, as a crash mid-write would.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()/2); err != nil {
		t.Fatal(err)
	}

	got, from, err := ReadFile(path)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if from != path+PrevSuffix {
		t.Fatalf("recovered from %q, want %q", from, path+PrevSuffix)
	}
	sameState(t, got, gen1)
}

// TestTornWriteBothGenerationsGone: when the primary is torn and no
// previous generation exists, ReadFile reports both failures.
func TestTornWriteBothGenerationsGone(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt")
	if err := WriteFile(path, testState(1)); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, 10); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadFile(path); err == nil {
		t.Fatal("expected an error with no readable generation")
	}
}

// TestReadFileMissingPrimary: a deleted primary (e.g. crashed between the
// rotate and the publish rename) still recovers from .prev.
func TestReadFileMissingPrimary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt")
	gen1 := testState(3)
	if err := WriteFile(path, gen1); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(path, path+PrevSuffix); err != nil {
		t.Fatal(err)
	}
	got, from, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if from != path+PrevSuffix {
		t.Fatalf("recovered from %q, want %q", from, path+PrevSuffix)
	}
	sameState(t, got, gen1)
}
