package spectral

import (
	"math"
	"math/rand"
	"testing"

	"partialreduce/internal/tensor"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// fig4a is the paper's homogeneous example: N=3, P=2, the three pairs
// equally likely. The paper derives ρ = 0.5.
func fig4a() GroupDist {
	return GroupDist{
		N:      3,
		Groups: [][]int{{0, 1}, {1, 2}, {0, 2}},
		Probs:  []float64{1.0 / 3, 1.0 / 3, 1.0 / 3},
	}
}

// fig4b is the heterogeneous example: worker 2 is two times slower, so the
// fast pair (0,1) synchronizes twice per cycle while each pair involving the
// slow worker synchronizes once. The paper derives ρ = 0.625.
func fig4b() GroupDist {
	return GroupDist{
		N:      3,
		Groups: [][]int{{0, 1}, {1, 2}, {0, 2}},
		Probs:  []float64{0.5, 0.25, 0.25},
	}
}

func TestGroupDistValidate(t *testing.T) {
	bad := []GroupDist{
		{N: 1, Groups: [][]int{{0}}, Probs: []float64{1}},
		{N: 3, Groups: nil, Probs: nil},
		{N: 3, Groups: [][]int{{0, 1}}, Probs: []float64{0.5}},
		{N: 3, Groups: [][]int{{0, 5}}, Probs: []float64{1}},
		{N: 3, Groups: [][]int{{0, 0}}, Probs: []float64{1}},
		{N: 3, Groups: [][]int{{0, 1}}, Probs: []float64{-1}},
		{N: 3, Groups: [][]int{{}}, Probs: []float64{1}},
		{N: 3, Groups: [][]int{{0, 1}, {1, 2}}, Probs: []float64{1, 1}},
	}
	for i, d := range bad {
		if d.Validate() == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	if err := fig4a().Validate(); err != nil {
		t.Fatalf("fig4a invalid: %v", err)
	}
}

func TestMeanWFig4a(t *testing.T) {
	m, err := MeanW(fig4a())
	if err != nil {
		t.Fatal(err)
	}
	// Diagonal 2/3, off-diagonal 1/6.
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 1.0 / 6
			if i == j {
				want = 2.0 / 3
			}
			if !almostEq(m.At(i, j), want, 1e-12) {
				t.Fatalf("E[W](%d,%d)=%v want %v", i, j, m.At(i, j), want)
			}
		}
	}
}

func TestMeanWDoublyStochastic(t *testing.T) {
	for _, d := range []GroupDist{fig4a(), fig4b(), UniformGroups(5, 3)} {
		m, err := MeanW(d)
		if err != nil {
			t.Fatal(err)
		}
		if !m.IsSymmetric(1e-12) {
			t.Fatal("E[W] not symmetric")
		}
		for i := 0; i < m.Rows; i++ {
			var row float64
			for j := 0; j < m.Cols; j++ {
				row += m.At(i, j)
			}
			if !almostEq(row, 1, 1e-12) {
				t.Fatalf("row %d sums to %v", i, row)
			}
		}
	}
}

// The headline Figure 4 numbers.
func TestRhoFig4(t *testing.T) {
	ma, err := MeanW(fig4a())
	if err != nil {
		t.Fatal(err)
	}
	rho, err := Rho(ma)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(rho, 0.5, 1e-9) {
		t.Fatalf("fig4a rho=%v want 0.5", rho)
	}

	mb, err := MeanW(fig4b())
	if err != nil {
		t.Fatal(err)
	}
	rho, err = Rho(mb)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(rho, 0.625, 1e-9) {
		t.Fatalf("fig4b rho=%v want 0.625", rho)
	}
}

// P = N: every group is the full cluster, E[W] is the all-1/N matrix and
// ρ = 0 — the paper's All-Reduce limit (§3.2.2).
func TestRhoAllReduceLimit(t *testing.T) {
	d := GroupDist{N: 4, Groups: [][]int{{0, 1, 2, 3}}, Probs: []float64{1}}
	m, err := MeanW(d)
	if err != nil {
		t.Fatal(err)
	}
	rho, err := Rho(m)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(rho, 0, 1e-9) {
		t.Fatalf("all-reduce rho=%v want 0", rho)
	}
}

// Heterogeneity monotonicity: skewing the pair distribution away from
// uniform increases ρ (shrinks the spectral gap), §3.2.2's conclusion.
func TestRhoGrowsWithHeterogeneity(t *testing.T) {
	var prev float64 = -1
	for _, skew := range []float64{1.0 / 3, 0.4, 0.5, 0.6, 0.7} {
		rest := (1 - skew) / 2
		d := GroupDist{
			N:      3,
			Groups: [][]int{{0, 1}, {1, 2}, {0, 2}},
			Probs:  []float64{skew, rest, rest},
		}
		m, err := MeanW(d)
		if err != nil {
			t.Fatal(err)
		}
		rho, err := Rho(m)
		if err != nil {
			t.Fatal(err)
		}
		if rho < prev {
			t.Fatalf("rho decreased to %v at skew %v", rho, skew)
		}
		prev = rho
	}
}

func TestUniformGroupsCounts(t *testing.T) {
	d := UniformGroups(5, 2)
	if len(d.Groups) != 10 { // C(5,2)
		t.Fatalf("groups: %d want 10", len(d.Groups))
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	d = UniformGroups(6, 3)
	if len(d.Groups) != 20 { // C(6,3)
		t.Fatalf("groups: %d want 20", len(d.Groups))
	}
}

func TestEigenvaluesKnownMatrix(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	m := tensor.MatrixFrom(2, 2, tensor.Vector{2, 1, 1, 2})
	eigs, err := Eigenvalues(m)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(eigs[0], 3, 1e-10) || !almostEq(eigs[1], 1, 1e-10) {
		t.Fatalf("eigs=%v want [3 1]", eigs)
	}
	// Input must not be mutated.
	if m.At(0, 1) != 1 {
		t.Fatal("Eigenvalues mutated its input")
	}
}

func TestEigenvaluesRejectsBadInput(t *testing.T) {
	if _, err := Eigenvalues(tensor.NewMatrix(2, 3)); err == nil {
		t.Fatal("non-square accepted")
	}
	ns := tensor.MatrixFrom(2, 2, tensor.Vector{1, 2, 3, 4})
	if _, err := Eigenvalues(ns); err == nil {
		t.Fatal("non-symmetric accepted")
	}
}

// Property: for random symmetric matrices, Jacobi reproduces the trace and
// Frobenius norm (sum and sum of squares of eigenvalues).
func TestQuickEigenvalueInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(7)
		m := tensor.NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				m.Set(i, j, v)
				m.Set(j, i, v)
			}
		}
		eigs, err := Eigenvalues(m)
		if err != nil {
			t.Fatal(err)
		}
		var trace, frob, esum, esq float64
		for i := 0; i < n; i++ {
			trace += m.At(i, i)
			for j := 0; j < n; j++ {
				frob += m.At(i, j) * m.At(i, j)
			}
		}
		for _, e := range eigs {
			esum += e
			esq += e * e
		}
		if !almostEq(trace, esum, 1e-8*(1+math.Abs(trace))) {
			t.Fatalf("trace %v != eig sum %v", trace, esum)
		}
		if !almostEq(frob, esq, 1e-8*(1+frob)) {
			t.Fatalf("frobenius² %v != eig square sum %v", frob, esq)
		}
		// Descending order.
		for i := 1; i < len(eigs); i++ {
			if eigs[i] > eigs[i-1]+1e-12 {
				t.Fatalf("eigenvalues not sorted: %v", eigs)
			}
		}
	}
}

func TestRhoBar(t *testing.T) {
	if RhoBar(0) != 0 {
		t.Fatalf("RhoBar(0)=%v", RhoBar(0))
	}
	// rho=0.25: 0.25/0.75 + 2*0.5/0.25 = 1/3 + 4
	if !almostEq(RhoBar(0.25), 1.0/3+4, 1e-12) {
		t.Fatalf("RhoBar(0.25)=%v", RhoBar(0.25))
	}
	if !math.IsInf(RhoBar(1), 1) {
		t.Fatal("RhoBar(1) should be +Inf")
	}
	// Monotone increasing on [0,1).
	prev := -1.0
	for r := 0.0; r < 0.99; r += 0.01 {
		if rb := RhoBar(r); rb < prev {
			t.Fatalf("RhoBar not monotone at %v", r)
		} else {
			prev = rb
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative rho should panic")
			}
		}()
		RhoBar(-0.1)
	}()
}

func TestLearningRateFeasible(t *testing.T) {
	// Tiny learning rates are always feasible; huge ones never.
	if !LearningRateFeasible(1e-6, 1, 8, 3, 0.5) {
		t.Fatal("tiny gamma rejected")
	}
	if LearningRateFeasible(1e6, 1, 8, 3, 0.5) {
		t.Fatal("huge gamma accepted")
	}
	// Higher rho shrinks the feasible region: find a gamma feasible at
	// rho=0.1 but not at rho=0.9.
	found := false
	for g := 1.0; g > 1e-6; g /= 2 {
		if LearningRateFeasible(g, 1, 8, 3, 0.1) && !LearningRateFeasible(g, 1, 8, 3, 0.9) {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("rho did not tighten the feasibility region")
	}
}

func TestConvergenceBoundShape(t *testing.T) {
	// More iterations tighten the bound; higher rho loosens it.
	b1 := ConvergenceBound(1, 0.01, 1, 1, 8, 3, 1000, 0.3)
	b2 := ConvergenceBound(1, 0.01, 1, 1, 8, 3, 10000, 0.3)
	if b2 >= b1 {
		t.Fatalf("bound did not shrink with K: %v -> %v", b1, b2)
	}
	b3 := ConvergenceBound(1, 0.01, 1, 1, 8, 3, 1000, 0.9)
	if b3 <= b1 {
		t.Fatalf("bound did not grow with rho: %v -> %v", b1, b3)
	}
}

// The closed form must match the numerically computed rho of the uniform
// distribution for every (n, p).
func TestUniformRhoMatchesNumeric(t *testing.T) {
	for n := 2; n <= 8; n++ {
		for p := 2; p <= n; p++ {
			m, err := MeanW(UniformGroups(n, p))
			if err != nil {
				t.Fatal(err)
			}
			numeric, err := Rho(m)
			if err != nil {
				t.Fatal(err)
			}
			if closed := UniformRho(n, p); !almostEq(closed, numeric, 1e-9) {
				t.Fatalf("n=%d p=%d: closed form %v vs numeric %v", n, p, closed, numeric)
			}
		}
	}
	if UniformRho(8, 8) != 0 {
		t.Fatal("P=N should give rho=0")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range UniformRho should panic")
			}
		}()
		UniformRho(2, 3)
	}()
}
