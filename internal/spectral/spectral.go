// Package spectral reproduces the paper's convergence analysis machinery
// (§3.2): building the expected synchronization matrix E[W_k] from a group
// distribution, computing its eigenvalues with a cyclic Jacobi solver, the
// spectral bound ρ = max(|λ₂|, |λ_N|) of Assumption 2(3), the derived
// quantity ρ̄ = ρ/(1−ρ) + 2√ρ/(1−√ρ)² of Theorem 1, and the learning-rate
// feasibility condition Eq. (7).
package spectral

import (
	"fmt"
	"math"
	"sort"

	"partialreduce/internal/tensor"
)

// GroupDist is a distribution over P-Reduce groups: Groups[i] occurs with
// probability Probs[i]. Probabilities must sum to 1.
type GroupDist struct {
	N      int
	Groups [][]int
	Probs  []float64
}

// Validate reports whether the distribution is usable.
func (d GroupDist) Validate() error {
	if d.N < 2 {
		return fmt.Errorf("spectral: need N >= 2, got %d", d.N)
	}
	if len(d.Groups) == 0 || len(d.Groups) != len(d.Probs) {
		return fmt.Errorf("spectral: %d groups with %d probabilities", len(d.Groups), len(d.Probs))
	}
	var total float64
	for i, g := range d.Groups {
		if len(g) < 1 {
			return fmt.Errorf("spectral: group %d is empty", i)
		}
		seen := map[int]bool{}
		for _, w := range g {
			if w < 0 || w >= d.N {
				return fmt.Errorf("spectral: group %d member %d out of range", i, w)
			}
			if seen[w] {
				return fmt.Errorf("spectral: group %d repeats member %d", i, w)
			}
			seen[w] = true
		}
		if d.Probs[i] < 0 {
			return fmt.Errorf("spectral: negative probability %v", d.Probs[i])
		}
		total += d.Probs[i]
	}
	if math.Abs(total-1) > 1e-9 {
		return fmt.Errorf("spectral: probabilities sum to %v", total)
	}
	return nil
}

// MeanW builds E[W_k] for the distribution: each group S contributes, with
// its probability, the matrix with 1/|S| on the S×S block and identity on
// the workers outside S (Eq. 4).
func MeanW(d GroupDist) (*tensor.Matrix, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	m := tensor.NewMatrix(d.N, d.N)
	for gi, g := range d.Groups {
		prob := d.Probs[gi]
		inv := 1 / float64(len(g))
		in := make([]bool, d.N)
		for _, w := range g {
			in[w] = true
		}
		for _, a := range g {
			for _, b := range g {
				m.Set(a, b, m.At(a, b)+prob*inv)
			}
		}
		for w := 0; w < d.N; w++ {
			if !in[w] {
				m.Set(w, w, m.At(w, w)+prob)
			}
		}
	}
	return m, nil
}

// UniformGroups returns the distribution where every P-subset of N workers
// is equally likely — the homogeneous-environment limit.
func UniformGroups(n, p int) GroupDist {
	var groups [][]int
	var build func(start int, cur []int)
	build = func(start int, cur []int) {
		if len(cur) == p {
			g := make([]int, p)
			copy(g, cur)
			groups = append(groups, g)
			return
		}
		for w := start; w < n; w++ {
			build(w+1, append(cur, w))
		}
	}
	build(0, nil)
	probs := make([]float64, len(groups))
	for i := range probs {
		probs[i] = 1 / float64(len(groups))
	}
	return GroupDist{N: n, Groups: groups, Probs: probs}
}

// Eigenvalues returns the eigenvalues of the symmetric matrix m in
// descending order, computed with the cyclic Jacobi rotation method.
// It returns an error if m is not square or not symmetric.
func Eigenvalues(m *tensor.Matrix) ([]float64, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("spectral: matrix is %dx%d, not square", m.Rows, m.Cols)
	}
	if !m.IsSymmetric(1e-9) {
		return nil, fmt.Errorf("spectral: matrix is not symmetric")
	}
	n := m.Rows
	a := m.Clone()

	const (
		maxSweeps = 100
		tol       = 1e-14
	)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += a.At(i, j) * a.At(i, j)
			}
		}
		if off < tol {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := a.At(p, p), a.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Apply the rotation J(p,q,θ)ᵀ A J(p,q,θ).
				for k := 0; k < n; k++ {
					akp, akq := a.At(k, p), a.At(k, q)
					a.Set(k, p, c*akp-s*akq)
					a.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk, aqk := a.At(p, k), a.At(q, k)
					a.Set(p, k, c*apk-s*aqk)
					a.Set(q, k, s*apk+c*aqk)
				}
			}
		}
	}
	eigs := make([]float64, n)
	for i := 0; i < n; i++ {
		eigs[i] = a.At(i, i)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(eigs)))
	return eigs, nil
}

// Rho returns the spectral bound ρ = max(|λ₂|, |λ_N|) of E[W] (Eq. 6).
// A doubly stochastic E[W] always has λ₁ = 1, which is excluded.
func Rho(meanW *tensor.Matrix) (float64, error) {
	eigs, err := Eigenvalues(meanW)
	if err != nil {
		return 0, err
	}
	if len(eigs) < 2 {
		return 0, nil
	}
	rho := math.Abs(eigs[1])
	if last := math.Abs(eigs[len(eigs)-1]); last > rho {
		rho = last
	}
	return rho, nil
}

// RhoBar returns ρ̄ = ρ/(1−ρ) + 2√ρ/(1−√ρ)², the network-error coefficient
// of Theorem 1. It returns +Inf at ρ = 1 (no spectral gap).
func RhoBar(rho float64) float64 {
	if rho < 0 {
		panic(fmt.Sprintf("spectral: negative rho %v", rho))
	}
	if rho >= 1 {
		return math.Inf(1)
	}
	sq := math.Sqrt(rho)
	return rho/(1-rho) + 2*sq/((1-sq)*(1-sq))
}

// LearningRateFeasible checks Theorem 1's step-size condition Eq. (7):
// ηL + 2N³η²ρ̄/P² ≤ 1 with η = (P/N)·γ.
func LearningRateFeasible(gamma, lipschitz float64, n, p int, rho float64) bool {
	eta := float64(p) / float64(n) * gamma
	lhs := eta*lipschitz + 2*math.Pow(float64(n), 3)*eta*eta*RhoBar(rho)/float64(p*p)
	return lhs <= 1
}

// ConvergenceBound evaluates the right-hand side of Theorem 1's bound
// (Eq. 8) for a run of K iterations: 2(F(u₁)−F_inf)/(ηK) + ηLσ²/P +
// 2η²L²σ²N³ρ̄/P². Experiments use it to show how ρ (heterogeneity) inflates
// the network-error term.
func ConvergenceBound(f1MinusFinf, gamma, lipschitz, sigma2 float64, n, p, k int, rho float64) float64 {
	eta := float64(p) / float64(n) * gamma
	sgdErr := 2*f1MinusFinf/(eta*float64(k)) + eta*lipschitz*sigma2/float64(p)
	netErr := 2 * eta * eta * lipschitz * lipschitz * sigma2 * math.Pow(float64(n), 3) * RhoBar(rho) / float64(p*p)
	return sgdErr + netErr
}

// UniformRho returns the closed-form spectral bound for the uniform group
// distribution (homogeneous environment): with every P-subset of N workers
// equally likely, E[W] = (d−e)·I + e·J with equal off-diagonals, whose
// second eigenvalue works out to ρ = 1 − (P−1)/(N−1). It is 0 at P=N (the
// All-Reduce limit) and grows as groups shrink — less mixing per update.
func UniformRho(n, p int) float64 {
	if n < 2 || p < 1 || p > n {
		panic(fmt.Sprintf("spectral: UniformRho(%d, %d) out of range", n, p))
	}
	return 1 - float64(p-1)/float64(n-1)
}
