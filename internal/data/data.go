// Package data provides the synthetic datasets that stand in for CIFAR-10,
// CIFAR-100 and ImageNet in the reproduction. Each dataset is a seeded
// Gaussian-mixture classification problem: classes have random mean vectors
// and isotropic within-class noise, so class overlap (and therefore the
// difficulty of reaching a test-accuracy threshold) is controlled by the
// mean separation / noise ratio. The package also provides train/test
// splitting, per-worker sharding, and mini-batch sampling.
package data

import (
	"fmt"
	"math"
	"math/rand"

	"partialreduce/internal/tensor"
)

// Dataset is a labelled classification dataset. Row i of X is example i with
// label Y[i] in [0, Classes).
type Dataset struct {
	X       *tensor.Matrix
	Y       []int
	Classes int
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.Y) }

// Dim returns the feature dimension.
func (d *Dataset) Dim() int { return d.X.Cols }

// Example returns feature row i (shared storage) and its label.
func (d *Dataset) Example(i int) (tensor.Vector, int) { return d.X.Row(i), d.Y[i] }

// MixtureConfig describes a Gaussian-mixture classification dataset.
type MixtureConfig struct {
	Classes    int     // number of classes (>= 2)
	Dim        int     // feature dimension
	Examples   int     // total examples to generate
	Separation float64 // distance scale between class means
	Noise      float64 // within-class standard deviation
	Seed       int64   // deterministic generation seed
}

// Validate reports whether the configuration is usable.
func (c MixtureConfig) Validate() error {
	switch {
	case c.Classes < 2:
		return fmt.Errorf("data: need >= 2 classes, got %d", c.Classes)
	case c.Dim < 1:
		return fmt.Errorf("data: need dim >= 1, got %d", c.Dim)
	case c.Examples < c.Classes:
		return fmt.Errorf("data: need >= %d examples, got %d", c.Classes, c.Examples)
	case c.Separation <= 0 || c.Noise <= 0:
		return fmt.Errorf("data: separation and noise must be positive")
	}
	return nil
}

// GaussianMixture generates a dataset per cfg. Class means are drawn on a
// sphere of radius cfg.Separation; examples cycle through classes so every
// class has ⌈Examples/Classes⌉ or ⌊Examples/Classes⌋ members, then the rows
// are shuffled.
func GaussianMixture(cfg MixtureConfig) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Class means are random directions scaled to cfg.Separation. The first
	// min(Classes, Dim) means are Gram-Schmidt orthogonalized so pairwise
	// class separation — and therefore the dataset's Bayes accuracy — is
	// consistent across seeds rather than at the mercy of two random means
	// landing close together.
	means := make([]tensor.Vector, cfg.Classes)
	for c := range means {
		m := tensor.NewVector(cfg.Dim)
		for {
			for j := range m {
				m[j] = rng.NormFloat64()
			}
			if c < cfg.Dim {
				for _, prev := range means[:c] {
					m.Axpy(-m.Dot(prev)/prev.Dot(prev), prev)
				}
			}
			if n := m.Norm2(); n > 1e-8 {
				m.Scale(cfg.Separation / n)
				break
			}
		}
		means[c] = m
	}

	d := &Dataset{
		X:       tensor.NewMatrix(cfg.Examples, cfg.Dim),
		Y:       make([]int, cfg.Examples),
		Classes: cfg.Classes,
	}
	for i := 0; i < cfg.Examples; i++ {
		c := i % cfg.Classes
		row := d.X.Row(i)
		for j := range row {
			row[j] = means[c][j] + cfg.Noise*rng.NormFloat64()
		}
		d.Y[i] = c
	}
	d.Shuffle(rng)
	return d, nil
}

// Shuffle permutes the examples in place using rng.
func (d *Dataset) Shuffle(rng *rand.Rand) {
	tmp := tensor.NewVector(d.Dim())
	rng.Shuffle(d.Len(), func(i, j int) {
		ri, rj := d.X.Row(i), d.X.Row(j)
		tmp.CopyFrom(ri)
		ri.CopyFrom(rj)
		rj.CopyFrom(tmp)
		d.Y[i], d.Y[j] = d.Y[j], d.Y[i]
	})
}

// Split partitions d into a training set with trainFrac of the examples and
// a test set with the remainder. Rows are referenced, not copied.
func (d *Dataset) Split(trainFrac float64) (train, test *Dataset) {
	n := d.Len()
	nt := int(math.Round(trainFrac * float64(n)))
	if nt < 1 {
		nt = 1
	}
	if nt > n-1 {
		nt = n - 1
	}
	train = d.slice(0, nt)
	test = d.slice(nt, n)
	return train, test
}

func (d *Dataset) slice(lo, hi int) *Dataset {
	return &Dataset{
		X:       tensor.MatrixFrom(hi-lo, d.Dim(), d.X.Data[lo*d.Dim():hi*d.Dim()]),
		Y:       d.Y[lo:hi],
		Classes: d.Classes,
	}
}

// Shard partitions d into n contiguous, near-equal shards (data-parallel
// sharding, one per worker). It panics if n < 1 or n > Len().
func (d *Dataset) Shard(n int) []*Dataset {
	if n < 1 || n > d.Len() {
		panic(fmt.Sprintf("data: cannot shard %d examples into %d shards", d.Len(), n))
	}
	shards := make([]*Dataset, n)
	per := d.Len() / n
	rem := d.Len() % n
	lo := 0
	for i := range shards {
		size := per
		if i < rem {
			size++
		}
		shards[i] = d.slice(lo, lo+size)
		lo += size
	}
	return shards
}

// CorruptLabels replaces frac of d's labels with uniformly random classes
// (deterministically from seed). Experiments corrupt only training shards:
// the label noise injects the irreducible gradient variance real image
// datasets have, which is what makes averaged (BSP) gradients statistically
// stronger than single stale (ASP) gradients near the accuracy threshold.
func (d *Dataset) CorruptLabels(frac float64, seed int64) {
	if frac <= 0 {
		return
	}
	rng := rand.New(rand.NewSource(seed))
	for i := range d.Y {
		if rng.Float64() < frac {
			d.Y[i] = rng.Intn(d.Classes)
		}
	}
}

// Batch holds a mini-batch referencing rows of the source dataset.
type Batch struct {
	X []tensor.Vector
	Y []int
}

// Sampler draws mini-batches uniformly with replacement from a dataset using
// its own RNG stream, so concurrent workers sample independently.
type Sampler struct {
	ds  *Dataset
	rng *rand.Rand
}

// NewSampler returns a sampler over ds seeded with seed.
func NewSampler(ds *Dataset, seed int64) *Sampler {
	return &Sampler{ds: ds, rng: rand.New(rand.NewSource(seed))}
}

// Sample fills and returns a batch of size m. The returned slices are reused
// across calls via b; pass nil to allocate.
func (s *Sampler) Sample(b *Batch, m int) *Batch {
	if b == nil {
		b = &Batch{}
	}
	b.X = b.X[:0]
	b.Y = b.Y[:0]
	for i := 0; i < m; i++ {
		idx := s.rng.Intn(s.ds.Len())
		x, y := s.ds.Example(idx)
		b.X = append(b.X, x)
		b.Y = append(b.Y, y)
	}
	return b
}

// Preset datasets standing in for the paper's benchmarks. Separation/noise
// are tuned so an MLP reaches the experiment thresholds in a few thousand
// updates, with enough class overlap that stale updates visibly slow
// convergence (the property the paper's statistical-efficiency metric needs).

// CIFAR10Sub returns the 10-class CIFAR-10 substitute. Separation 3.5 puts
// the mixture's Bayes accuracy near 0.95, so the paper's 90% threshold is
// reachable but not trivial.
func CIFAR10Sub(seed int64) (*Dataset, error) {
	return GaussianMixture(MixtureConfig{
		Classes: 10, Dim: 32, Examples: 6000,
		Separation: 3.5, Noise: 1.0, Seed: seed,
	})
}

// CIFAR100Sub returns the 100-class CIFAR-100 substitute. Separation 4.5
// keeps the mixture's ceiling comfortably above the 70% threshold the
// paper's CIFAR-100 experiments use.
func CIFAR100Sub(seed int64) (*Dataset, error) {
	return GaussianMixture(MixtureConfig{
		Classes: 100, Dim: 64, Examples: 12000,
		Separation: 4.5, Noise: 1.0, Seed: seed,
	})
}

// ImageNetSub returns the ImageNet substitute: a 300-class mixture, the
// largest workload in the suite. (The class count is scaled down from
// ImageNet's 1000 so a full Fig. 10/11 sweep stays tractable on one host;
// the workload keeps ImageNet's role — far more classes and examples than
// the CIFAR substitutes and a step-decay LR schedule.)
func ImageNetSub(seed int64) (*Dataset, error) {
	return GaussianMixture(MixtureConfig{
		Classes: 300, Dim: 96, Examples: 18000,
		Separation: 5.0, Noise: 1.0, Seed: seed,
	})
}
