package data

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustMixture(t *testing.T, cfg MixtureConfig) *Dataset {
	t.Helper()
	d, err := GaussianMixture(cfg)
	if err != nil {
		t.Fatalf("GaussianMixture: %v", err)
	}
	return d
}

func smallCfg(seed int64) MixtureConfig {
	return MixtureConfig{Classes: 4, Dim: 8, Examples: 400, Separation: 3, Noise: 1, Seed: seed}
}

func TestValidate(t *testing.T) {
	bad := []MixtureConfig{
		{Classes: 1, Dim: 2, Examples: 10, Separation: 1, Noise: 1},
		{Classes: 2, Dim: 0, Examples: 10, Separation: 1, Noise: 1},
		{Classes: 10, Dim: 2, Examples: 5, Separation: 1, Noise: 1},
		{Classes: 2, Dim: 2, Examples: 10, Separation: 0, Noise: 1},
		{Classes: 2, Dim: 2, Examples: 10, Separation: 1, Noise: -1},
	}
	for i, cfg := range bad {
		if _, err := GaussianMixture(cfg); err == nil {
			t.Errorf("case %d: expected error for %+v", i, cfg)
		}
	}
	if err := smallCfg(1).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestDeterminism(t *testing.T) {
	a := mustMixture(t, smallCfg(42))
	b := mustMixture(t, smallCfg(42))
	for i := range a.X.Data {
		if a.X.Data[i] != b.X.Data[i] {
			t.Fatal("same seed produced different features")
		}
	}
	for i := range a.Y {
		if a.Y[i] != b.Y[i] {
			t.Fatal("same seed produced different labels")
		}
	}
	c := mustMixture(t, smallCfg(43))
	same := true
	for i := range a.X.Data {
		if a.X.Data[i] != c.X.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestClassBalance(t *testing.T) {
	d := mustMixture(t, smallCfg(1))
	counts := make([]int, d.Classes)
	for _, y := range d.Y {
		if y < 0 || y >= d.Classes {
			t.Fatalf("label %d out of range", y)
		}
		counts[y]++
	}
	for c, n := range counts {
		if n != d.Len()/d.Classes {
			t.Fatalf("class %d has %d examples, want %d", c, n, d.Len()/d.Classes)
		}
	}
}

func TestSplit(t *testing.T) {
	d := mustMixture(t, smallCfg(2))
	train, test := d.Split(0.8)
	if train.Len()+test.Len() != d.Len() {
		t.Fatalf("split sizes %d+%d != %d", train.Len(), test.Len(), d.Len())
	}
	if train.Len() != 320 {
		t.Fatalf("train size %d, want 320", train.Len())
	}
	// Extreme fractions still leave both sides non-empty.
	tr2, te2 := d.Split(0)
	if tr2.Len() < 1 || te2.Len() < 1 {
		t.Fatal("degenerate split emptied a side")
	}
	tr3, te3 := d.Split(1)
	if tr3.Len() < 1 || te3.Len() < 1 {
		t.Fatal("degenerate split emptied a side")
	}
}

func TestShard(t *testing.T) {
	d := mustMixture(t, smallCfg(3))
	shards := d.Shard(7)
	total := 0
	for _, s := range shards {
		total += s.Len()
		if s.Dim() != d.Dim() || s.Classes != d.Classes {
			t.Fatal("shard metadata mismatch")
		}
	}
	if total != d.Len() {
		t.Fatalf("shards cover %d of %d examples", total, d.Len())
	}
	// Near-equal sizes: max-min <= 1.
	minSz, maxSz := shards[0].Len(), shards[0].Len()
	for _, s := range shards {
		if s.Len() < minSz {
			minSz = s.Len()
		}
		if s.Len() > maxSz {
			maxSz = s.Len()
		}
	}
	if maxSz-minSz > 1 {
		t.Fatalf("unbalanced shards: min %d max %d", minSz, maxSz)
	}
	// Shards reference disjoint rows: example 0 of shard 1 is example
	// shards[0].Len() of d.
	x, y := shards[1].Example(0)
	wx, wy := d.Example(shards[0].Len())
	if y != wy || &x[0] != &wx[0] {
		t.Fatal("shard rows are not views into the parent dataset")
	}
}

func TestShardPanics(t *testing.T) {
	d := mustMixture(t, smallCfg(4))
	for _, n := range []int{0, -1, d.Len() + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Shard(%d): expected panic", n)
				}
			}()
			d.Shard(n)
		}()
	}
}

func TestSampler(t *testing.T) {
	d := mustMixture(t, smallCfg(5))
	s := NewSampler(d, 99)
	b := s.Sample(nil, 16)
	if len(b.X) != 16 || len(b.Y) != 16 {
		t.Fatalf("batch size %d/%d", len(b.X), len(b.Y))
	}
	// Reuse: same struct, fresh contents.
	b2 := s.Sample(b, 8)
	if b2 != b || len(b.X) != 8 {
		t.Fatal("Sample did not reuse the batch")
	}
	// Two samplers with the same seed draw the same indices.
	s1, s2 := NewSampler(d, 7), NewSampler(d, 7)
	a1 := s1.Sample(nil, 32)
	a2 := s2.Sample(nil, 32)
	for i := range a1.Y {
		if a1.Y[i] != a2.Y[i] {
			t.Fatal("same-seed samplers diverged")
		}
	}
}

func TestShuffleKeepsPairs(t *testing.T) {
	// After shuffling, each feature row must still be near its class mean:
	// verify labels moved with rows by checking the nearest class mean by
	// majority. Simpler invariant: multiset of labels unchanged.
	d := mustMixture(t, smallCfg(6))
	before := make([]int, d.Classes)
	for _, y := range d.Y {
		before[y]++
	}
	d.Shuffle(rand.New(rand.NewSource(1)))
	after := make([]int, d.Classes)
	for _, y := range d.Y {
		after[y]++
	}
	for c := range before {
		if before[c] != after[c] {
			t.Fatal("shuffle changed label multiset")
		}
	}
}

func TestPresets(t *testing.T) {
	for name, f := range map[string]func(int64) (*Dataset, error){
		"cifar10":  CIFAR10Sub,
		"cifar100": CIFAR100Sub,
		"imagenet": ImageNetSub,
	} {
		d, err := f(1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d.Len() == 0 || d.Classes < 10 {
			t.Fatalf("%s: degenerate dataset", name)
		}
	}
}

// Property: sharding any valid dataset into any valid count preserves every
// example exactly once, in order.
func TestQuickShardPartition(t *testing.T) {
	f := func(seed int64, nShards uint8) bool {
		d := mustMixture(t, smallCfg(seed))
		n := int(nShards)%d.Len() + 1
		shards := d.Shard(n)
		i := 0
		for _, s := range shards {
			for j := 0; j < s.Len(); j++ {
				_, y := s.Example(j)
				if y != d.Y[i] {
					return false
				}
				i++
			}
		}
		return i == d.Len()
	}
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
