package collective

import (
	"testing"
	"time"

	"partialreduce/internal/transport"
)

func TestBootstrapTransfer(t *testing.T) {
	world := transport.NewMem(3)
	donor, joiner := 0, 2
	want := BootstrapState{
		Params:   []float64{1.5, -2, 3e30, 0},
		Velocity: []float64{0.1, 0.2, 0.3, 0.4},
		Iter:     41,
		Step:     97,
	}
	errCh := make(chan error, 1)
	go func() {
		errCh <- BootstrapSend(world[donor], joiner, 7, want, Options{})
	}()
	var stats OpStats
	got, err := BootstrapRecv(world[joiner], donor, 7, Options{Stats: &stats})
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if got.Iter != want.Iter || got.Step != want.Step {
		t.Fatalf("counters: got %d/%d want %d/%d", got.Iter, got.Step, want.Iter, want.Step)
	}
	for i := range want.Params {
		if got.Params[i] != want.Params[i] {
			t.Fatalf("param %d: got %v want %v", i, got.Params[i], want.Params[i])
		}
	}
	for i := range want.Velocity {
		if got.Velocity[i] != want.Velocity[i] {
			t.Fatalf("velocity %d: got %v want %v", i, got.Velocity[i], want.Velocity[i])
		}
	}
	if stats.Ops != 1 || stats.BytesRecv == 0 {
		t.Fatalf("stats not accumulated: %+v", stats)
	}
}

func TestBootstrapNoVelocity(t *testing.T) {
	world := transport.NewMem(2)
	want := BootstrapState{Params: []float64{9, 8, 7}, Iter: 5, Step: 5}
	go func() { BootstrapSend(world[0], 1, 1, want, Options{}) }()
	got, err := BootstrapRecv(world[1], 0, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Velocity) != 0 {
		t.Fatalf("expected empty velocity, got %v", got.Velocity)
	}
	if len(got.Params) != 3 || got.Params[2] != 7 {
		t.Fatalf("params corrupted: %v", got.Params)
	}
}

// TestBootstrapRecvTimeout: a joiner whose donor died does not hang; the
// deadline fires so the runtime can pick another donor.
func TestBootstrapRecvTimeout(t *testing.T) {
	world := transport.NewMem(2)
	_, err := BootstrapRecv(world[1], 0, 2, Options{Timeout: 30 * time.Millisecond})
	if err == nil {
		t.Fatal("expected a timeout with no donor sending")
	}
	if !transport.IsTimeout(err) {
		t.Fatalf("want timeout error, got %v", err)
	}
}

func TestBootstrapSendValidates(t *testing.T) {
	world := transport.NewMem(2)
	if err := BootstrapSend(world[0], 1, 3, BootstrapState{}, Options{}); err == nil {
		t.Fatal("empty params accepted")
	}
	bad := BootstrapState{Params: []float64{1, 2}, Velocity: []float64{1}}
	if err := BootstrapSend(world[0], 1, 4, bad, Options{}); err == nil {
		t.Fatal("mismatched velocity accepted")
	}
}
