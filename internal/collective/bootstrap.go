package collective

import (
	"fmt"

	"partialreduce/internal/transport"
)

// Bootstrap is the elastic scale-out transfer: a joining rank fetches the
// freshest checkpointed model from a live donor over the transport before
// it signals ready for its first group. It is a two-frame point-to-point
// protocol under the standard collective tag scheme (phase 7, unused by the
// ring ops): a header frame carrying the donor's iteration/step counters
// and payload sizes, then the concatenated parameter and velocity vectors.
// Counters and lengths ride as float64s — exact for any value below 2⁵³,
// far beyond any iteration count or model size the transport accepts.

// phaseBootstrap extends the phase space (1–6 are the ring and tree ops;
// 7 is the last value that fits the 3-bit phase field).
const phaseBootstrap = 7

const (
	bootstrapStepHeader  = 0
	bootstrapStepPayload = 1
	bootstrapHeaderLen   = 4 // iter, step, nParams, nVelocity
)

// BootstrapState is the model state a donor serves and a joiner installs.
type BootstrapState struct {
	// Params is the flat parameter vector.
	Params []float64
	// Velocity is the optimizer momentum buffer; empty for stateless
	// optimizers (the joiner then starts with zero momentum).
	Velocity []float64
	// Iter is the donor's iteration counter at checkpoint time; the joiner
	// resumes from it.
	Iter int
	// Step is the donor's optimizer update counter (LR schedules).
	Step int
}

// BootstrapSend transfers state to the joining rank. The donor calls it
// when the runtime picks it as the join donor; opID must match the
// joiner's BootstrapRecv.
func BootstrapSend(t transport.Transport, joiner int, opID uint32, state BootstrapState, opt Options) error {
	if len(state.Params) == 0 {
		return fmt.Errorf("collective: bootstrap: empty parameter vector")
	}
	if len(state.Velocity) != 0 && len(state.Velocity) != len(state.Params) {
		return fmt.Errorf("collective: bootstrap: velocity length %d != params length %d",
			len(state.Velocity), len(state.Params))
	}
	hdr := [bootstrapHeaderLen]float64{
		float64(state.Iter), float64(state.Step),
		float64(len(state.Params)), float64(len(state.Velocity)),
	}
	if err := t.Send(joiner, tag(opID, phaseBootstrap, bootstrapStepHeader), hdr[:]); err != nil {
		return err
	}
	body := make([]float64, 0, len(state.Params)+len(state.Velocity))
	body = append(body, state.Params...)
	body = append(body, state.Velocity...)
	if err := t.Send(joiner, tag(opID, phaseBootstrap, bootstrapStepPayload), body); err != nil {
		return err
	}
	if opt.Stats != nil {
		opt.Stats.Ops++
		opt.Stats.BytesSent += int64(8 * (bootstrapHeaderLen + len(body)))
	}
	return nil
}

// BootstrapRecv receives a donor's model state. The joiner blocks until
// the transfer lands or Options.Timeout expires (zero waits forever); on
// timeout the caller typically picks another donor and retries with a
// fresh opID.
func BootstrapRecv(t transport.Transport, donor int, opID uint32, opt Options) (BootstrapState, error) {
	var st BootstrapState
	hdr := make([]float64, bootstrapHeaderLen)
	n, err := transport.RecvIntoDeadline(t, donor, tag(opID, phaseBootstrap, bootstrapStepHeader), hdr, opt.Timeout)
	if err != nil {
		return st, err
	}
	if n != bootstrapHeaderLen {
		return st, fmt.Errorf("collective: bootstrap header %d elems, want %d", n, bootstrapHeaderLen)
	}
	nParams, nVel := int(hdr[2]), int(hdr[3])
	if nParams <= 0 || nParams > transport.DefaultMaxFrameElems || nVel < 0 || (nVel != 0 && nVel != nParams) {
		return st, fmt.Errorf("collective: bootstrap header sizes %d/%d implausible", nParams, nVel)
	}
	body := make([]float64, nParams+nVel)
	n, err = transport.RecvIntoDeadline(t, donor, tag(opID, phaseBootstrap, bootstrapStepPayload), body, opt.Timeout)
	if err != nil {
		return st, err
	}
	if n != len(body) {
		return st, fmt.Errorf("collective: bootstrap payload %d elems, want %d", n, len(body))
	}
	st = BootstrapState{
		Params:   body[:nParams:nParams],
		Velocity: body[nParams:],
		Iter:     int(hdr[0]),
		Step:     int(hdr[1]),
	}
	if opt.Stats != nil {
		opt.Stats.Ops++
		opt.Stats.BytesRecv += int64(8 * (bootstrapHeaderLen + len(body)))
	}
	return st, nil
}
