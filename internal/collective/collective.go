// Package collective implements the data-moving collective operations the
// live runtime uses: ring all-reduce (reduce-scatter followed by all-gather,
// the bandwidth-optimal algorithm of Patarasuk & Yuan that the paper's
// prototype uses through Gloo), binomial-tree broadcast, and gather. All
// collectives operate over an arbitrary subgroup of ranks, which is exactly
// what P-Reduce needs: each controller-formed group runs its own collective,
// and disjoint groups run concurrently without interference.
//
// Data plane (see DESIGN.md): tensors larger than Options.SegmentElems are
// split into fixed-size segments whose ring steps pipeline — segment k+1 is
// on the wire while segment k is being reduced — in the style of Gloo's
// segmented rings. Receives land via transport.RecvInto in pooled or in-place
// buffers and the reduce inner loop runs on the tensor.AddScaled kernel, so
// a steady-state ring step performs zero heap allocations. Per-operation
// counters (bytes, phase wall time, segments) accumulate into OpStats.
package collective

import (
	"fmt"
	"time"

	"partialreduce/internal/bufpool"
	"partialreduce/internal/tensor"
	"partialreduce/internal/trace"
	"partialreduce/internal/transport"
)

// DefaultSegmentElems is the default pipeline segment size in float64
// elements (32 KiB on the wire): small enough that the segment being reduced
// and the one in flight both sit in L1/L2 while the wire stays busy, large
// enough that the per-segment tag/header overhead is noise. Chosen by
// sweeping {1,2,4,8,16,64}Ki on a 4-rank in-process ring over 1M elements
// (see BenchmarkRingSegmented): 4Ki elements was fastest by a wide margin.
const DefaultSegmentElems = 4 * 1024

// Tag layout: callers supply an operation id unique per collective instance
// (e.g. the P-Reduce group sequence number); bits 16–23 carry the retry
// epoch (bits 19–23) and phase (bits 16–18), and the low 16 bits carry the
// virtual step — ring step × segments-per-step + segment index. segsPerStep
// is clamped so the virtual step never overflows 16 bits. Epoch 0 tags are
// identical to the pre-retry layout, so the zero-policy path is unchanged on
// the wire.
func tag(opID uint32, phase, step int) uint64 {
	return uint64(opID)<<24 | uint64(phase)<<16 | uint64(step)
}

// epochPhase folds a retry epoch into the 8-bit phase byte: epoch<<3 | phase.
// Phases fit 3 bits (1–6), leaving 5 bits ≡ MaxEpochs retry epochs. A retry
// attempt uses fresh tags everywhere, so stale frames from the failed attempt
// can never alias the new one.
func epochPhase(epoch, phase int) int { return epoch<<3 | phase }

// MaxEpochs is the number of distinguishable retry epochs per operation; a
// RetryPolicy's attempts are clamped to it.
const MaxEpochs = 32

const (
	phaseReduceScatter = 1
	phaseAllGather     = 2
	phaseBroadcast     = 3
	phaseGather        = 4
	phaseAllGatherFull = 5
	phaseBarrier       = 6
)

// maxVirtualStep bounds the step field of a tag.
const maxVirtualStep = 1 << 16

// OpStats accumulates per-operation data-plane counters. Collectives add to
// the struct passed via Options; one OpStats must not be shared by
// concurrently running collectives (give each goroutine its own and Merge).
type OpStats struct {
	// Ops counts completed collective operations.
	Ops int64
	// BytesSent and BytesRecv count payload bytes through the transport
	// (8 bytes per float64 element; frame headers excluded).
	BytesSent int64
	BytesRecv int64
	// Segments counts pipeline segments sent (1 per ring step when
	// segmentation is off).
	Segments int64
	// ReduceScatter and AllGather are wall time spent in the two ring
	// phases. Broadcast/gather/barrier time is not phase-attributed.
	ReduceScatter time.Duration
	AllGather     time.Duration
	// Retries counts retried attempts after a receive deadline expired,
	// Timeouts counts deadline expiries observed, and Aborts counts
	// operations abandoned after exhausting their retry budget (or aborted
	// by the runtime's recovery path when counted there).
	Retries  int64
	Timeouts int64
	Aborts   int64
}

// Merge adds o into s.
func (s *OpStats) Merge(o OpStats) {
	s.Ops += o.Ops
	s.BytesSent += o.BytesSent
	s.BytesRecv += o.BytesRecv
	s.Segments += o.Segments
	s.ReduceScatter += o.ReduceScatter
	s.AllGather += o.AllGather
	s.Retries += o.Retries
	s.Timeouts += o.Timeouts
	s.Aborts += o.Aborts
}

// String renders a one-line summary.
func (s OpStats) String() string {
	return fmt.Sprintf("ops=%d sent=%.1fMB recv=%.1fMB segments=%d rs=%s ag=%s retries=%d timeouts=%d aborts=%d",
		s.Ops, float64(s.BytesSent)/1e6, float64(s.BytesRecv)/1e6, s.Segments,
		s.ReduceScatter.Round(time.Microsecond), s.AllGather.Round(time.Microsecond),
		s.Retries, s.Timeouts, s.Aborts)
}

// RetryPolicy bounds and paces collective retry after receive timeouts.
// The zero value means "one attempt, no retry" — today's behavior. Backoff
// is exponential with seeded jitter: attempt k (0-based) sleeps
// min(MaxDelay, BaseDelay·Multiplier^k) scaled by a deterministic factor in
// [1−Jitter, 1+Jitter] drawn from a stream seeded by (Seed, opID), so a run
// with the same seed reproduces the identical retry trace.
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget (clamped to [1, MaxEpochs]);
	// 0 means 1.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (0: no sleep).
	BaseDelay time.Duration
	// MaxDelay caps the backoff (0: uncapped).
	MaxDelay time.Duration
	// Multiplier grows the backoff per retry (<= 0 treated as 1: constant
	// backoff).
	Multiplier float64
	// Jitter in [0, 1] spreads the backoff deterministically per seed.
	Jitter float64
	// Seed drives the jitter stream.
	Seed int64
}

// attempts returns the clamped attempt budget.
func (p RetryPolicy) attempts() int {
	a := p.MaxAttempts
	if a <= 0 {
		a = 1
	}
	if a > MaxEpochs {
		a = MaxEpochs
	}
	return a
}

// Validate reports whether the policy is usable.
func (p RetryPolicy) Validate() error {
	if p.MaxAttempts < 0 {
		return fmt.Errorf("collective: negative MaxAttempts")
	}
	if p.BaseDelay < 0 || p.MaxDelay < 0 {
		return fmt.Errorf("collective: negative retry delay")
	}
	if p.Multiplier < 0 {
		return fmt.Errorf("collective: negative retry multiplier")
	}
	if p.Jitter < 0 || p.Jitter > 1 {
		return fmt.Errorf("collective: retry jitter must be in [0,1]")
	}
	return nil
}

// backoff returns the pause before retry number k (0-based), jittered by the
// op-specific stream rng.
func (p RetryPolicy) backoff(k int, rng *jitterRNG) time.Duration {
	d := float64(p.BaseDelay)
	m := p.Multiplier
	if m <= 0 {
		m = 1
	}
	for i := 0; i < k; i++ {
		d *= m
		if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 {
		d *= 1 - p.Jitter + 2*p.Jitter*rng.float64()
	}
	return time.Duration(d)
}

// jitterRNG is a tiny deterministic SplitMix64 stream for backoff jitter.
type jitterRNG struct{ state uint64 }

func newJitterRNG(seed int64, opID uint32) *jitterRNG {
	z := uint64(seed)*0x9E3779B97F4A7C15 + uint64(opID)*0xBF58476D1CE4E5B9 + 0xD1B54A32D192ED03
	return &jitterRNG{state: z}
}

func (r *jitterRNG) float64() float64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return float64((z^(z>>31))>>11) / (1 << 53)
}

// Options tune a collective call. The zero value selects the defaults.
type Options struct {
	// SegmentElems is the pipeline segment size in elements: 0 selects
	// DefaultSegmentElems, negative disables segmentation (one segment per
	// ring step — the unsegmented reference path).
	SegmentElems int
	// Stats, when non-nil, accumulates the operation's data-plane counters.
	Stats *OpStats
	// Timeout bounds every receive in the operation: when the transport
	// supports deadlines, a receive that exceeds it fails with
	// transport.ErrTimeout instead of parking forever. 0 means unbounded.
	Timeout time.Duration
	// Retry governs what a ring collective does after a timeout: purge the
	// failed attempt's frames, back off, and retry under a fresh tag epoch.
	// The zero value disables retry (a timeout fails the op immediately).
	Retry RetryPolicy
	// Tracer, when non-nil, records the collective's timeline: the whole
	// operation as a KCollective span, the two ring phases as
	// KReduceScatter/KAllGather sub-spans, retry backoff pauses as
	// KRetryBackoff spans, and KRetry/KTimeout/KAbort instants for the
	// robustness events. A nil tracer costs one nil check per site and
	// allocates nothing (the data plane's allocgate keeps holding).
	Tracer *trace.Tracer
	// TraceTrack is the track trace events are recorded on (the caller's
	// worker rank) and TraceIter their iteration context (-1 when unknown).
	TraceTrack int32
	TraceIter  int32
}

func (o Options) segElems() int {
	switch {
	case o.SegmentElems == 0:
		return DefaultSegmentElems
	case o.SegmentElems < 0:
		return 0 // unsegmented
	default:
		return o.SegmentElems
	}
}

// position returns the caller's index within group, or an error if absent.
// Every member must pass the identical group slice (same order).
func position(t transport.Transport, group []int) (int, error) {
	for i, r := range group {
		if r == t.Rank() {
			return i, nil
		}
	}
	return 0, fmt.Errorf("collective: rank %d not in group %v", t.Rank(), group)
}

// chunk returns the [lo, hi) bounds of chunk c when n elements are split
// into g near-equal chunks.
func chunk(n, g, c int) (lo, hi int) {
	base := n / g
	rem := n % g
	lo = c*base + min(c, rem)
	size := base
	if c < rem {
		size++
	}
	return lo, lo + size
}

// segCount returns the number of segments covering n elements (>= 1 only
// when n > 0; an empty chunk has zero segments).
func segCount(n, seg int) int {
	if n <= 0 {
		return 0
	}
	if seg <= 0 || seg >= n {
		return 1
	}
	return (n + seg - 1) / seg
}

// ring is the per-call state of one segmented ring collective: neighbors,
// the agreed segment geometry, the pooled receive buffer for the reduce
// phase, and the stats sink.
type ring struct {
	t          transport.Transport
	opID       uint32
	epoch      int           // retry epoch folded into every tag
	deadline   time.Duration // per-receive bound (0: unbounded)
	next, prev int
	seg        int // segment size in elements; 0 = unsegmented
	segsPer    int // tag stride: max segments of any ring step
	buf        []float64
	stats      *OpStats
}

// newRing computes the segment geometry every member agrees on (it depends
// only on n, g, and the segment option, which all members share). The
// segment size grows as needed so the virtual step never overflows its
// 16 tag bits.
func newRing(t transport.Transport, group []int, pos int, opID uint32, n int, opt Options, stats *OpStats) ring {
	g := len(group)
	seg := opt.segElems()
	maxChunk := n/g + 1
	segsPer := segCount(maxChunk, seg)
	if segsPer < 1 {
		segsPer = 1
	}
	for g*segsPer >= maxVirtualStep {
		// Enormous tensor and tiny segments: coarsen deterministically.
		seg *= 2
		segsPer = segCount(maxChunk, seg)
	}
	return ring{
		t:    t,
		opID: opID,
		next: group[(pos+1)%g],
		prev: group[(pos-1+g)%g],
		seg:  seg, segsPer: segsPer,
		stats: stats,
	}
}

// step runs one pipelined ring step of the given phase: the send chunk
// [sendLo, sendHi) streams to next in segments while the recv chunk
// [recvLo, recvHi) streams in from prev, one segment ahead on the wire.
// With reduce set, received segments are accumulated into data via the
// AddScaled kernel; otherwise they are received in place (all-gather).
func (r *ring) step(phase, s int, data []float64, sendLo, sendHi, recvLo, recvHi int, reduce bool) error {
	segLen := func(lo, hi, k int) (int, int) {
		a := lo + k*r.seg
		b := hi
		if r.seg > 0 && a+r.seg < hi {
			b = a + r.seg
		}
		return a, b
	}
	sm := segCount(sendHi-sendLo, r.seg)
	rm := segCount(recvHi-recvLo, r.seg)
	base := s * r.segsPer

	ph := epochPhase(r.epoch, phase)
	sent := 0
	send := func() error {
		lo, hi := segLen(sendLo, sendHi, sent)
		if err := r.t.Send(r.next, tag(r.opID, ph, base+sent), data[lo:hi]); err != nil {
			return err
		}
		if r.stats != nil {
			r.stats.BytesSent += int64(8 * (hi - lo))
			r.stats.Segments++
		}
		sent++
		return nil
	}
	if sm > 0 {
		if err := send(); err != nil { // prime the pipeline
			return err
		}
	}
	for k := 0; k < rm || sent < sm; k++ {
		if sent < sm {
			if err := send(); err != nil { // segment k+1 rides the wire…
				return err
			}
		}
		if k >= rm {
			continue
		}
		lo, hi := segLen(recvLo, recvHi, k) // …while segment k lands here
		want := hi - lo
		dst := data[lo:hi]
		if reduce {
			dst = r.buf[:want]
		}
		n, err := transport.RecvIntoDeadline(r.t, r.prev, tag(r.opID, ph, base+k), dst, r.deadline)
		if err != nil {
			return err
		}
		if n != want {
			return fmt.Errorf("collective: chunk size mismatch %d != %d", want, n)
		}
		if r.stats != nil {
			r.stats.BytesRecv += int64(8 * want)
		}
		if reduce {
			tensor.AddScaled(data[lo:hi], r.buf[:want], 1)
		}
	}
	return nil
}

// AllReduceSum sums data element-wise across the members of group, leaving
// the total in every member's data slice. All members must call it with the
// same group, opID, and data length. Groups of one return immediately.
func AllReduceSum(t transport.Transport, group []int, opID uint32, data []float64) error {
	return AllReduceSumOpts(t, group, opID, data, Options{})
}

// AllReduceSumOpts is AllReduceSum with explicit data-plane options. The
// segmented path is bit-identical to the unsegmented one: segmentation only
// changes message boundaries, never the per-element order of operations.
//
// With Options.Timeout set, every receive is deadline-bounded; with a
// non-zero Options.Retry, a timed-out attempt is abandoned (its buffered
// frames purged), the input restored from a snapshot, and the operation
// retried under a fresh tag epoch after a seeded-jitter exponential backoff.
// Non-timeout failures (peer down, op aborted) are never retried — they have
// their own recovery path in the runtime. When the attempt budget is
// exhausted the op is aborted locally so straggler frames are dropped on
// arrival, and the last timeout error is returned.
func AllReduceSumOpts(t transport.Transport, group []int, opID uint32, data []float64, opt Options) error {
	g := len(group)
	if g <= 1 {
		return nil
	}
	pos, err := position(t, group)
	if err != nil {
		return err
	}
	stats := opt.Stats
	n := len(data)
	attempts := opt.Retry.attempts()
	if opt.Timeout <= 0 {
		attempts = 1 // without deadlines there is nothing to retry from
	}

	var snapshot []float64
	var rng *jitterRNG
	if attempts > 1 {
		snapshot = bufpool.GetFloat64(n)
		copy(snapshot, data)
		defer bufpool.PutFloat64(snapshot)
		rng = newJitterRNG(opt.Retry.Seed, opID)
	}

	opStart := opt.Tracer.Now()
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			// Discard the failed attempt: restore the input, drop its
			// buffered frames, and pace the retry.
			copy(data, snapshot)
			transport.PurgeOpAt(t, opID)
			if d := opt.Retry.backoff(a-1, rng); d > 0 {
				pause := opt.Tracer.Now()
				time.Sleep(d)
				opt.Tracer.Span(trace.KRetryBackoff, opt.TraceTrack, opt.TraceIter, pause, int64(opID), int64(a))
			}
			if stats != nil {
				stats.Retries++
			}
			opt.Tracer.Instant(trace.KRetry, opt.TraceTrack, opt.TraceIter, int64(opID), int64(a))
		}
		err := allReduceAttempt(t, group, pos, opID, a, data, opt, stats)
		if err == nil {
			if a > 0 {
				// Stale frames from failed epochs may still trickle in;
				// marking the op aborted makes the mailbox drop them on
				// arrival instead of parking them forever. The op is
				// complete, so no future receive of it can be poisoned.
				if oa, ok := t.(transport.OpAborter); ok {
					oa.AbortOp(opID)
				}
			}
			if stats != nil {
				stats.Ops++
			}
			opt.Tracer.Span(trace.KCollective, opt.TraceTrack, opt.TraceIter, opStart, int64(opID), int64(g))
			return nil
		}
		if !transport.IsTimeout(err) {
			return err
		}
		if stats != nil {
			stats.Timeouts++
		}
		opt.Tracer.Instant(trace.KTimeout, opt.TraceTrack, opt.TraceIter, int64(opID), int64(a))
		lastErr = err
	}
	// Retry budget exhausted: abort locally so frames of any epoch are
	// flushed and future stragglers dropped, then surface the timeout.
	if oa, ok := t.(transport.OpAborter); ok {
		oa.AbortOp(opID)
	}
	if stats != nil {
		stats.Aborts++
	}
	opt.Tracer.Instant(trace.KAbort, opt.TraceTrack, opt.TraceIter, int64(opID), 0)
	return lastErr
}

// allReduceAttempt runs one reduce-scatter + all-gather pass under the given
// retry epoch's tags.
func allReduceAttempt(t transport.Transport, group []int, pos int, opID uint32, epoch int, data []float64, opt Options, stats *OpStats) error {
	g := len(group)
	n := len(data)
	r := newRing(t, group, pos, opID, n, opt, stats)
	r.epoch = epoch
	r.deadline = opt.Timeout
	maxSeg := r.seg
	if maxSeg <= 0 || maxSeg > n/g+1 {
		maxSeg = n/g + 1
	}
	r.buf = bufpool.GetFloat64(maxSeg)
	defer bufpool.PutFloat64(r.buf)

	// Reduce-scatter: after g−1 steps, chunk (pos+1) mod g is fully reduced
	// here.
	start := time.Now()
	trStart := opt.Tracer.Now()
	for s := 0; s < g-1; s++ {
		sendChunk := ((pos-s)%g + g) % g
		recvChunk := ((pos-s-1)%g + g) % g
		sendLo, sendHi := chunk(n, g, sendChunk)
		recvLo, recvHi := chunk(n, g, recvChunk)
		if err := r.step(phaseReduceScatter, s, data, sendLo, sendHi, recvLo, recvHi, true); err != nil {
			return err
		}
	}
	mid := time.Now()
	if stats != nil {
		stats.ReduceScatter += mid.Sub(start)
	}
	opt.Tracer.Span(trace.KReduceScatter, opt.TraceTrack, opt.TraceIter, trStart, int64(opID), 0)

	// All-gather: circulate the reduced chunks.
	trMid := opt.Tracer.Now()
	for s := 0; s < g-1; s++ {
		sendChunk := ((pos+1-s)%g + g) % g
		recvChunk := ((pos-s)%g + g) % g
		sendLo, sendHi := chunk(n, g, sendChunk)
		recvLo, recvHi := chunk(n, g, recvChunk)
		if err := r.step(phaseAllGather, s, data, sendLo, sendHi, recvLo, recvHi, false); err != nil {
			return err
		}
	}
	if stats != nil {
		stats.AllGather += time.Since(mid)
	}
	opt.Tracer.Span(trace.KAllGather, opt.TraceTrack, opt.TraceIter, trMid, int64(opID), 0)
	return nil
}

// AllReduceMean averages data element-wise across the group.
func AllReduceMean(t transport.Transport, group []int, opID uint32, data []float64) error {
	return AllReduceMeanOpts(t, group, opID, data, Options{})
}

// AllReduceMeanOpts is AllReduceMean with explicit data-plane options.
func AllReduceMeanOpts(t transport.Transport, group []int, opID uint32, data []float64, opt Options) error {
	if err := AllReduceSumOpts(t, group, opID, data, opt); err != nil {
		return err
	}
	tensor.Vector(data).Scale(1 / float64(len(group)))
	return nil
}

// WeightedAverage computes the weighted sum Σ_i weights[i]·data_i across the
// group, leaving the result in every member's data. weight is the caller's
// own coefficient — the P-Reduce aggregation (Alg. 2 line 7) with the
// controller's constant or dynamic weights.
func WeightedAverage(t transport.Transport, group []int, opID uint32, data []float64, weight float64) error {
	return WeightedAverageOpts(t, group, opID, data, weight, Options{})
}

// WeightedAverageOpts is WeightedAverage with explicit data-plane options.
func WeightedAverageOpts(t transport.Transport, group []int, opID uint32, data []float64, weight float64, opt Options) error {
	tensor.Vector(data).Scale(weight)
	return AllReduceSumOpts(t, group, opID, data, opt)
}

// Broadcast distributes root's data to every group member using a binomial
// tree. Non-root members' data slices are overwritten; lengths must match.
func Broadcast(t transport.Transport, group []int, opID uint32, root int, data []float64) error {
	return BroadcastOpts(t, group, opID, root, data, Options{})
}

// BroadcastOpts is Broadcast with explicit data-plane options.
func BroadcastOpts(t transport.Transport, group []int, opID uint32, root int, data []float64, opt Options) error {
	g := len(group)
	if g <= 1 {
		return nil
	}
	pos, err := position(t, group)
	if err != nil {
		return err
	}
	rootPos := -1
	for i, r := range group {
		if r == root {
			rootPos = i
			break
		}
	}
	if rootPos < 0 {
		return fmt.Errorf("collective: root %d not in group %v", root, group)
	}
	stats := opt.Stats
	// Relative position with root at 0.
	rel := ((pos-rootPos)%g + g) % g

	received := rel == 0
	for d := 1; d < g; d <<= 1 {
		if received && rel < d {
			dst := rel + d
			if dst < g {
				to := group[(dst+rootPos)%g]
				if err := t.Send(to, tag(opID, phaseBroadcast, d), data); err != nil {
					return err
				}
				if stats != nil {
					stats.BytesSent += int64(8 * len(data))
				}
			}
			continue
		}
		if !received && rel < 2*d {
			src := rel - d
			from := group[(src+rootPos)%g]
			n, err := transport.RecvIntoDeadline(t, from, tag(opID, phaseBroadcast, d), data, opt.Timeout)
			if err != nil {
				return err
			}
			if n != len(data) {
				return fmt.Errorf("collective: broadcast size mismatch %d != %d", n, len(data))
			}
			if stats != nil {
				stats.BytesRecv += int64(8 * len(data))
			}
			received = true
		}
	}
	if stats != nil {
		stats.Ops++
	}
	return nil
}

// Gather collects every member's data at root, returned in group order.
// Non-root members receive nil. All members must pass equal-length data;
// a member whose payload length disagrees fails the gather at the root.
func Gather(t transport.Transport, group []int, opID uint32, root int, data []float64) ([][]float64, error) {
	return GatherOpts(t, group, opID, root, data, Options{})
}

// GatherOpts is Gather with explicit options; Options.Timeout bounds every
// root-side receive, so a member behind a severed link fails the gather with
// transport.ErrTimeout instead of hanging the root.
func GatherOpts(t transport.Transport, group []int, opID uint32, root int, data []float64, opt Options) ([][]float64, error) {
	pos, err := position(t, group)
	if err != nil {
		return nil, err
	}
	if t.Rank() != root {
		return nil, t.Send(root, tag(opID, phaseGather, pos), data)
	}
	out := make([][]float64, len(group))
	for i, r := range group {
		if r == root {
			cp := make([]float64, len(data))
			copy(cp, data)
			out[i] = cp
			continue
		}
		in := make([]float64, len(data))
		n, err := transport.RecvIntoDeadline(t, r, tag(opID, phaseGather, i), in, opt.Timeout)
		if err != nil {
			return nil, err
		}
		if n != len(data) {
			return nil, fmt.Errorf("collective: gather size mismatch from rank %d: %d != %d", r, n, len(data))
		}
		out[i] = in
	}
	return out, nil
}

// AllGather collects every member's fixed-size data at every member,
// concatenated in group order. All members must pass equal-length data.
func AllGather(t transport.Transport, group []int, opID uint32, data []float64) ([][]float64, error) {
	g := len(group)
	out := make([][]float64, g)
	pos, err := position(t, group)
	if err != nil {
		return nil, err
	}
	cp := make([]float64, len(data))
	copy(cp, data)
	out[pos] = cp
	if g == 1 {
		return out, nil
	}
	// Ring circulation: g−1 steps, each member forwarding the slice it
	// received last step.
	next := group[(pos+1)%g]
	prev := group[(pos-1+g)%g]
	cur := data
	for s := 0; s < g-1; s++ {
		if err := t.Send(next, tag(opID, phaseAllGatherFull, s), cur); err != nil {
			return nil, err
		}
		in, err := t.Recv(prev, tag(opID, phaseAllGatherFull, s))
		if err != nil {
			return nil, err
		}
		if len(in) != len(data) {
			return nil, fmt.Errorf("collective: all-gather size mismatch %d != %d", len(in), len(data))
		}
		src := ((pos-s-1)%g + g) % g
		out[src] = in
		cur = in
	}
	return out, nil
}

// Barrier blocks until every group member has entered it: a zero-payload
// ring pass of g−1 steps means completion requires, transitively, a message
// chain through every member. Frames carry empty payloads, so the barrier
// moves no data and allocates nothing.
func Barrier(t transport.Transport, group []int, opID uint32) error {
	return BarrierOpts(t, group, opID, Options{})
}

// BarrierOpts is Barrier with explicit options; Options.Timeout bounds each
// ring receive so a member lost behind a partition surfaces as ErrTimeout.
func BarrierOpts(t transport.Transport, group []int, opID uint32, opt Options) error {
	g := len(group)
	if g <= 1 {
		return nil
	}
	pos, err := position(t, group)
	if err != nil {
		return err
	}
	next := group[(pos+1)%g]
	prev := group[(pos-1+g)%g]
	for s := 0; s < g-1; s++ {
		if err := t.Send(next, tag(opID, phaseBarrier, s), nil); err != nil {
			return err
		}
		if _, err := transport.RecvIntoDeadline(t, prev, tag(opID, phaseBarrier, s), nil, opt.Timeout); err != nil {
			return err
		}
	}
	return nil
}
