// Package collective implements the data-moving collective operations the
// live runtime uses: ring all-reduce (reduce-scatter followed by all-gather,
// the bandwidth-optimal algorithm of Patarasuk & Yuan that the paper's
// prototype uses through Gloo), binomial-tree broadcast, and gather. All
// collectives operate over an arbitrary subgroup of ranks, which is exactly
// what P-Reduce needs: each controller-formed group runs its own collective,
// and disjoint groups run concurrently without interference.
package collective

import (
	"fmt"

	"partialreduce/internal/transport"
)

// Tag layout: callers supply an operation id unique per collective instance
// (e.g. the P-Reduce group sequence number); phase and step occupy low bits.
func tag(opID uint32, phase, step int) uint64 {
	return uint64(opID)<<24 | uint64(phase)<<16 | uint64(step)
}

const (
	phaseReduceScatter = 1
	phaseAllGather     = 2
	phaseBroadcast     = 3
	phaseGather        = 4
	phaseAllGatherFull = 5
)

// position returns the caller's index within group, or an error if absent.
// Every member must pass the identical group slice (same order).
func position(t transport.Transport, group []int) (int, error) {
	for i, r := range group {
		if r == t.Rank() {
			return i, nil
		}
	}
	return 0, fmt.Errorf("collective: rank %d not in group %v", t.Rank(), group)
}

// chunk returns the [lo, hi) bounds of chunk c when n elements are split
// into g near-equal chunks.
func chunk(n, g, c int) (lo, hi int) {
	base := n / g
	rem := n % g
	lo = c*base + min(c, rem)
	size := base
	if c < rem {
		size++
	}
	return lo, lo + size
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// AllReduceSum sums data element-wise across the members of group, leaving
// the total in every member's data slice. All members must call it with the
// same group, opID, and data length. Groups of one return immediately.
func AllReduceSum(t transport.Transport, group []int, opID uint32, data []float64) error {
	g := len(group)
	if g <= 1 {
		return nil
	}
	pos, err := position(t, group)
	if err != nil {
		return err
	}
	next := group[(pos+1)%g]
	prev := group[(pos-1+g)%g]
	n := len(data)

	// Reduce-scatter: after g−1 steps, chunk (pos+1) mod g is fully reduced
	// here.
	for s := 0; s < g-1; s++ {
		sendChunk := ((pos-s)%g + g) % g
		recvChunk := ((pos-s-1)%g + g) % g
		lo, hi := chunk(n, g, sendChunk)
		if err := t.Send(next, tag(opID, phaseReduceScatter, s), data[lo:hi]); err != nil {
			return err
		}
		in, err := t.Recv(prev, tag(opID, phaseReduceScatter, s))
		if err != nil {
			return err
		}
		lo, hi = chunk(n, g, recvChunk)
		if hi-lo != len(in) {
			return fmt.Errorf("collective: chunk size mismatch %d != %d", hi-lo, len(in))
		}
		for i := range in {
			data[lo+i] += in[i]
		}
	}

	// All-gather: circulate the reduced chunks.
	for s := 0; s < g-1; s++ {
		sendChunk := ((pos+1-s)%g + g) % g
		recvChunk := ((pos-s)%g + g) % g
		lo, hi := chunk(n, g, sendChunk)
		if err := t.Send(next, tag(opID, phaseAllGather, s), data[lo:hi]); err != nil {
			return err
		}
		in, err := t.Recv(prev, tag(opID, phaseAllGather, s))
		if err != nil {
			return err
		}
		lo, hi = chunk(n, g, recvChunk)
		if hi-lo != len(in) {
			return fmt.Errorf("collective: chunk size mismatch %d != %d", hi-lo, len(in))
		}
		copy(data[lo:hi], in)
	}
	return nil
}

// AllReduceMean averages data element-wise across the group.
func AllReduceMean(t transport.Transport, group []int, opID uint32, data []float64) error {
	if err := AllReduceSum(t, group, opID, data); err != nil {
		return err
	}
	inv := 1 / float64(len(group))
	for i := range data {
		data[i] *= inv
	}
	return nil
}

// WeightedAverage computes the weighted sum Σ_i weights[i]·data_i across the
// group, leaving the result in every member's data. weight is the caller's
// own coefficient — the P-Reduce aggregation (Alg. 2 line 7) with the
// controller's constant or dynamic weights.
func WeightedAverage(t transport.Transport, group []int, opID uint32, data []float64, weight float64) error {
	for i := range data {
		data[i] *= weight
	}
	return AllReduceSum(t, group, opID, data)
}

// Broadcast distributes root's data to every group member using a binomial
// tree. Non-root members' data slices are overwritten; lengths must match.
func Broadcast(t transport.Transport, group []int, opID uint32, root int, data []float64) error {
	g := len(group)
	if g <= 1 {
		return nil
	}
	pos, err := position(t, group)
	if err != nil {
		return err
	}
	rootPos := -1
	for i, r := range group {
		if r == root {
			rootPos = i
			break
		}
	}
	if rootPos < 0 {
		return fmt.Errorf("collective: root %d not in group %v", root, group)
	}
	// Relative position with root at 0.
	rel := ((pos-rootPos)%g + g) % g

	received := rel == 0
	for d := 1; d < g; d <<= 1 {
		if received && rel < d {
			dst := rel + d
			if dst < g {
				to := group[(dst+rootPos)%g]
				if err := t.Send(to, tag(opID, phaseBroadcast, d), data); err != nil {
					return err
				}
			}
			continue
		}
		if !received && rel < 2*d {
			src := rel - d
			from := group[(src+rootPos)%g]
			in, err := t.Recv(from, tag(opID, phaseBroadcast, d))
			if err != nil {
				return err
			}
			if len(in) != len(data) {
				return fmt.Errorf("collective: broadcast size mismatch %d != %d", len(in), len(data))
			}
			copy(data, in)
			received = true
		}
	}
	return nil
}

// Gather collects every member's data at root, returned in group order.
// Non-root members receive nil.
func Gather(t transport.Transport, group []int, opID uint32, root int, data []float64) ([][]float64, error) {
	pos, err := position(t, group)
	if err != nil {
		return nil, err
	}
	if t.Rank() != root {
		return nil, t.Send(root, tag(opID, phaseGather, pos), data)
	}
	out := make([][]float64, len(group))
	for i, r := range group {
		if r == root {
			cp := make([]float64, len(data))
			copy(cp, data)
			out[i] = cp
			continue
		}
		in, err := t.Recv(r, tag(opID, phaseGather, i))
		if err != nil {
			return nil, err
		}
		out[i] = in
	}
	return out, nil
}

// AllGather collects every member's fixed-size data at every member,
// concatenated in group order. All members must pass equal-length data.
func AllGather(t transport.Transport, group []int, opID uint32, data []float64) ([][]float64, error) {
	g := len(group)
	out := make([][]float64, g)
	pos, err := position(t, group)
	if err != nil {
		return nil, err
	}
	cp := make([]float64, len(data))
	copy(cp, data)
	out[pos] = cp
	if g == 1 {
		return out, nil
	}
	// Ring circulation: g−1 steps, each member forwarding the slice it
	// received last step.
	next := group[(pos+1)%g]
	prev := group[(pos-1+g)%g]
	cur := data
	for s := 0; s < g-1; s++ {
		if err := t.Send(next, tag(opID, phaseAllGatherFull, s), cur); err != nil {
			return nil, err
		}
		in, err := t.Recv(prev, tag(opID, phaseAllGatherFull, s))
		if err != nil {
			return nil, err
		}
		if len(in) != len(data) {
			return nil, fmt.Errorf("collective: all-gather size mismatch %d != %d", len(in), len(data))
		}
		src := ((pos-s-1)%g + g) % g
		out[src] = in
		cur = in
	}
	return out, nil
}

// Barrier blocks until every group member has entered it.
func Barrier(t transport.Transport, group []int, opID uint32) error {
	// A zero-byte ring all-reduce is a barrier: completion requires a
	// message from every member.
	buf := make([]float64, len(group))
	return AllReduceSum(t, group, opID, buf)
}
