package collective

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"partialreduce/internal/transport"
)

// runGroup calls f concurrently for every member of group and waits.
func runGroup(t *testing.T, eps []*transport.Mem, group []int, f func(tr transport.Transport) error) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, len(group))
	for i, r := range group {
		i, r := i, r
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = f(eps[r])
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("member %d (rank %d): %v", i, group[i], err)
		}
	}
}

func TestChunkPartition(t *testing.T) {
	for n := 0; n < 30; n++ {
		for g := 1; g <= 8; g++ {
			covered := 0
			prevHi := 0
			for c := 0; c < g; c++ {
				lo, hi := chunk(n, g, c)
				if lo != prevHi {
					t.Fatalf("n=%d g=%d c=%d: gap/overlap lo=%d prevHi=%d", n, g, c, lo, prevHi)
				}
				covered += hi - lo
				prevHi = hi
			}
			if covered != n {
				t.Fatalf("n=%d g=%d: covered %d", n, g, covered)
			}
		}
	}
}

func TestAllReduceSumFullGroup(t *testing.T) {
	const n, d = 4, 10
	eps := transport.NewMem(n)
	group := []int{0, 1, 2, 3}
	datas := make([][]float64, n)
	want := make([]float64, d)
	for r := range datas {
		datas[r] = make([]float64, d)
		for i := range datas[r] {
			datas[r][i] = float64(r*100 + i)
			want[i] += datas[r][i]
		}
	}
	runGroup(t, eps, group, func(tr transport.Transport) error {
		return AllReduceSum(tr, group, 1, datas[tr.Rank()])
	})
	for r := range datas {
		for i := range want {
			if math.Abs(datas[r][i]-want[i]) > 1e-9 {
				t.Fatalf("rank %d elem %d: %v want %v", r, i, datas[r][i], want[i])
			}
		}
	}
}

func TestAllReduceSubgroup(t *testing.T) {
	// Only ranks {1,3,4} of a 6-rank world participate.
	eps := transport.NewMem(6)
	group := []int{1, 3, 4}
	datas := map[int][]float64{
		1: {1, 2, 3, 4, 5},
		3: {10, 20, 30, 40, 50},
		4: {100, 200, 300, 400, 500},
	}
	runGroup(t, eps, group, func(tr transport.Transport) error {
		return AllReduceSum(tr, group, 2, datas[tr.Rank()])
	})
	want := []float64{111, 222, 333, 444, 555}
	for _, r := range group {
		for i := range want {
			if datas[r][i] != want[i] {
				t.Fatalf("rank %d: %v", r, datas[r])
			}
		}
	}
}

func TestConcurrentDisjointGroups(t *testing.T) {
	// Two disjoint groups all-reduce simultaneously — the P-Reduce pattern.
	eps := transport.NewMem(6)
	g1, g2 := []int{0, 1, 2}, []int{3, 4, 5}
	datas := make([][]float64, 6)
	for r := range datas {
		datas[r] = []float64{float64(r + 1)}
	}
	var wg sync.WaitGroup
	for _, spec := range []struct {
		group []int
		op    uint32
	}{{g1, 10}, {g2, 11}} {
		spec := spec
		for _, r := range spec.group {
			r := r
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := AllReduceSum(eps[r], spec.group, spec.op, datas[r]); err != nil {
					t.Errorf("rank %d: %v", r, err)
				}
			}()
		}
	}
	wg.Wait()
	for _, r := range g1 {
		if datas[r][0] != 6 { // 1+2+3
			t.Fatalf("g1 rank %d: %v", r, datas[r])
		}
	}
	for _, r := range g2 {
		if datas[r][0] != 15 { // 4+5+6
			t.Fatalf("g2 rank %d: %v", r, datas[r])
		}
	}
}

func TestAllReduceGroupOfOne(t *testing.T) {
	eps := transport.NewMem(1)
	data := []float64{7}
	if err := AllReduceSum(eps[0], []int{0}, 1, data); err != nil {
		t.Fatal(err)
	}
	if data[0] != 7 {
		t.Fatalf("got %v", data)
	}
}

func TestAllReduceNotInGroup(t *testing.T) {
	eps := transport.NewMem(3)
	if err := AllReduceSum(eps[2], []int{0, 1}, 1, []float64{1}); err == nil {
		t.Fatal("non-member accepted")
	}
}

func TestAllReduceMean(t *testing.T) {
	eps := transport.NewMem(2)
	datas := [][]float64{{2, 4}, {4, 8}}
	group := []int{0, 1}
	runGroup(t, eps, group, func(tr transport.Transport) error {
		return AllReduceMean(tr, group, 3, datas[tr.Rank()])
	})
	for r := range datas {
		if datas[r][0] != 3 || datas[r][1] != 6 {
			t.Fatalf("rank %d: %v", r, datas[r])
		}
	}
}

func TestWeightedAverage(t *testing.T) {
	eps := transport.NewMem(2)
	datas := [][]float64{{10}, {20}}
	weights := []float64{0.25, 0.75}
	group := []int{0, 1}
	runGroup(t, eps, group, func(tr transport.Transport) error {
		return WeightedAverage(tr, group, 4, datas[tr.Rank()], weights[tr.Rank()])
	})
	want := 0.25*10 + 0.75*20
	for r := range datas {
		if math.Abs(datas[r][0]-want) > 1e-12 {
			t.Fatalf("rank %d: %v want %v", r, datas[r][0], want)
		}
	}
}

func TestBroadcast(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		eps := transport.NewMem(n)
		group := make([]int, n)
		for i := range group {
			group[i] = i
		}
		for root := 0; root < n; root += max(1, n/3) {
			datas := make([][]float64, n)
			for r := range datas {
				datas[r] = make([]float64, 4)
			}
			for i := range datas[root] {
				datas[root][i] = float64(root*10 + i)
			}
			root := root
			runGroup(t, eps, group, func(tr transport.Transport) error {
				return Broadcast(tr, group, uint32(100+root), root, datas[tr.Rank()])
			})
			for r := range datas {
				for i := range datas[r] {
					if datas[r][i] != float64(root*10+i) {
						t.Fatalf("n=%d root=%d rank %d: %v", n, root, r, datas[r])
					}
				}
			}
		}
	}
}

func TestBroadcastBadRoot(t *testing.T) {
	eps := transport.NewMem(3)
	if err := Broadcast(eps[0], []int{0, 1}, 1, 2, []float64{1}); err == nil {
		t.Fatal("root outside group accepted")
	}
}

func TestGather(t *testing.T) {
	eps := transport.NewMem(4)
	group := []int{0, 2, 3}
	root := 2
	datas := map[int][]float64{0: {1}, 2: {2}, 3: {3}}
	results := make(map[int][][]float64)
	var mu sync.Mutex
	runGroup(t, eps, group, func(tr transport.Transport) error {
		out, err := Gather(tr, group, 7, root, datas[tr.Rank()])
		mu.Lock()
		results[tr.Rank()] = out
		mu.Unlock()
		return err
	})
	if results[0] != nil || results[3] != nil {
		t.Fatal("non-root received gather output")
	}
	got := results[2]
	if len(got) != 3 || got[0][0] != 1 || got[1][0] != 2 || got[2][0] != 3 {
		t.Fatalf("gather at root: %v", got)
	}
}

// Property: for random group sizes, vector lengths (including lengths
// smaller than the group), and values, ring all-reduce matches the
// sequential sum on every member.
func TestQuickAllReduceMatchesSequential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := 2 + rng.Intn(7)
		d := 1 + rng.Intn(12) // may be < g: some chunks are empty
		eps := transport.NewMem(g)
		group := make([]int, g)
		for i := range group {
			group[i] = i
		}
		datas := make([][]float64, g)
		want := make([]float64, d)
		for r := range datas {
			datas[r] = make([]float64, d)
			for i := range datas[r] {
				datas[r][i] = rng.NormFloat64()
				want[i] += datas[r][i]
			}
		}
		var wg sync.WaitGroup
		ok := true
		var mu sync.Mutex
		for _, r := range group {
			r := r
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := AllReduceSum(eps[r], group, 1, datas[r]); err != nil {
					mu.Lock()
					ok = false
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		if !ok {
			return false
		}
		for r := range datas {
			for i := range want {
				if math.Abs(datas[r][i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAllGather(t *testing.T) {
	eps := transport.NewMem(4)
	group := []int{0, 1, 2, 3}
	results := make([][][]float64, 4)
	runGroup(t, eps, group, func(tr transport.Transport) error {
		out, err := AllGather(tr, group, 21, []float64{float64(tr.Rank() * 10), float64(tr.Rank()*10 + 1)})
		results[tr.Rank()] = out
		return err
	})
	for r := 0; r < 4; r++ {
		for src := 0; src < 4; src++ {
			want0 := float64(src * 10)
			if results[r][src][0] != want0 || results[r][src][1] != want0+1 {
				t.Fatalf("rank %d slot %d: %v", r, src, results[r][src])
			}
		}
	}
}

func TestAllGatherSingleton(t *testing.T) {
	eps := transport.NewMem(1)
	out, err := AllGather(eps[0], []int{0}, 1, []float64{7})
	if err != nil || len(out) != 1 || out[0][0] != 7 {
		t.Fatalf("singleton all-gather: %v %v", out, err)
	}
	// The returned slot must be a copy, not an alias.
	in := []float64{1}
	out, _ = AllGather(eps[0], []int{0}, 2, in)
	in[0] = 99
	if out[0][0] != 1 {
		t.Fatal("all-gather aliased caller data")
	}
}

func TestBarrier(t *testing.T) {
	eps := transport.NewMem(3)
	group := []int{0, 1, 2}
	var reached [3]int32
	var wg sync.WaitGroup
	for _, r := range group {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			atomic.StoreInt32(&reached[r], 1)
			if err := Barrier(eps[r], group, 31); err != nil {
				t.Errorf("rank %d: %v", r, err)
				return
			}
			// After the barrier, every rank must have entered it.
			for i := range reached {
				if atomic.LoadInt32(&reached[i]) == 0 {
					t.Errorf("rank %d passed barrier before rank %d entered", r, i)
				}
			}
		}()
	}
	wg.Wait()
}
