package collective

import (
	"sync"
	"testing"
	"time"

	"partialreduce/internal/transport"
)

// faultyGroup builds a Faulty-wrapped Mem world.
func faultyGroup(t *testing.T, n int, plan transport.FaultPlan) []*transport.Faulty {
	t.Helper()
	mems := transport.NewMem(n)
	inner := make([]transport.Transport, n)
	for i, ep := range mems {
		inner[i] = ep
	}
	eps, err := transport.NewFaultyWorld(inner, plan)
	if err != nil {
		t.Fatal(err)
	}
	return eps
}

func TestRetryPolicyValidate(t *testing.T) {
	bad := []RetryPolicy{
		{MaxAttempts: -1},
		{BaseDelay: -time.Second},
		{MaxDelay: -time.Second},
		{Multiplier: -2},
		{Jitter: -0.1},
		{Jitter: 1.5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad policy %d accepted: %+v", i, p)
		}
	}
	good := RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 50 * time.Millisecond, Multiplier: 2, Jitter: 0.2, Seed: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("good policy rejected: %v", err)
	}
}

// TestRetryBackoffDeterministic: the backoff schedule is exponential, capped
// at MaxDelay, and — because the jitter stream is seeded by (Seed, opID) —
// identical across runs with the same seed and distinct across op ids.
func TestRetryBackoffDeterministic(t *testing.T) {
	p := RetryPolicy{
		MaxAttempts: 8, BaseDelay: 10 * time.Millisecond, MaxDelay: 60 * time.Millisecond,
		Multiplier: 2, Jitter: 0.25, Seed: 42,
	}
	seq := func(opID uint32) []time.Duration {
		rng := newJitterRNG(p.Seed, opID)
		out := make([]time.Duration, 6)
		for k := range out {
			out[k] = p.backoff(k, rng)
		}
		return out
	}
	a, b := seq(7), seq(7)
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("same (seed,op) gave different backoff at %d: %v vs %v", k, a[k], b[k])
		}
		// Base 10ms doubling, capped at 60ms, jittered by at most ±25%.
		nominal := 10 * time.Millisecond << k
		if nominal > 60*time.Millisecond {
			nominal = 60 * time.Millisecond
		}
		lo := time.Duration(float64(nominal) * 0.749)
		hi := time.Duration(float64(nominal) * 1.251)
		if a[k] < lo || a[k] > hi {
			t.Fatalf("backoff %d = %v outside jitter band [%v,%v]", k, a[k], lo, hi)
		}
	}
	c := seq(8)
	same := true
	for k := range a {
		if a[k] != c[k] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("distinct op ids produced identical jitter streams")
	}

	// Jitter-free policy: the schedule is the pure exponential.
	noJ := RetryPolicy{BaseDelay: 5 * time.Millisecond, Multiplier: 3, MaxDelay: 100 * time.Millisecond}
	want := []time.Duration{5, 15, 45, 100, 100}
	for k, w := range want {
		if got := noJ.backoff(k, nil); got != w*time.Millisecond {
			t.Fatalf("backoff %d = %v, want %v", k, got, w*time.Millisecond)
		}
	}
}

// TestAllReduceRetriesThroughPartition: a timed partition makes the first
// attempt(s) time out; the retry loop backs off and succeeds once the window
// closes, and the result is still the exact element-wise sum. The retry
// traffic shows up in OpStats.
func TestAllReduceRetriesThroughPartition(t *testing.T) {
	const n, d = 2, 64
	eps := faultyGroup(t, n, transport.FaultPlan{
		Seed:       11,
		Partitions: []transport.Partition{{Ranks: []int{1}, From: 0, Until: 400 * time.Millisecond}},
	})
	group := []int{0, 1}
	datas := make([][]float64, n)
	want := make([]float64, d)
	for r := 0; r < n; r++ {
		datas[r] = make([]float64, d)
		for i := range datas[r] {
			datas[r][i] = float64(r*100 + i)
			want[i] += datas[r][i]
		}
	}
	stats := make([]OpStats, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[r] = AllReduceSumOpts(eps[r], group, 1, datas[r], Options{
				Timeout: 200 * time.Millisecond,
				Retry: RetryPolicy{
					MaxAttempts: 8, BaseDelay: 50 * time.Millisecond,
					MaxDelay: 200 * time.Millisecond, Multiplier: 2, Jitter: 0.2, Seed: 11,
				},
				Stats: &stats[r],
			})
		}()
	}
	wg.Wait()
	var retries, timeouts int64
	for r := 0; r < n; r++ {
		if errs[r] != nil {
			t.Fatalf("rank %d: %v", r, errs[r])
		}
		for i := range want {
			if datas[r][i] != want[i] {
				t.Fatalf("rank %d element %d: %v != %v (a retried attempt leaked partial state)", r, i, datas[r][i], want[i])
			}
		}
		if stats[r].Aborts != 0 {
			t.Fatalf("rank %d aborted a collective that eventually succeeded", r)
		}
		retries += stats[r].Retries
		timeouts += stats[r].Timeouts
	}
	if retries == 0 || timeouts == 0 {
		t.Fatalf("partition produced no retry evidence: retries=%d timeouts=%d", retries, timeouts)
	}
}

// TestAllReduceAbortsAfterBudget: a permanently severed link exhausts the
// attempt budget; both members surface transport.ErrTimeout (not a hang) and
// count exactly one abort.
func TestAllReduceAbortsAfterBudget(t *testing.T) {
	const n, d = 2, 32
	eps := faultyGroup(t, n, transport.FaultPlan{
		Seed:       12,
		LinkFaults: map[[2]int]transport.LinkFault{{0, 1}: {Sever: true}},
	})
	group := []int{0, 1}
	stats := make([]OpStats, n)
	errs := make([]error, n)
	done := make(chan struct{})
	go func() {
		var wg sync.WaitGroup
		for r := 0; r < n; r++ {
			r := r
			wg.Add(1)
			go func() {
				defer wg.Done()
				data := make([]float64, d)
				errs[r] = AllReduceSumOpts(eps[r], group, 2, data, Options{
					Timeout: 100 * time.Millisecond,
					Retry:   RetryPolicy{MaxAttempts: 2, BaseDelay: 10 * time.Millisecond, Seed: 12},
					Stats:   &stats[r],
				})
			}()
		}
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("severed link hung the collective despite deadlines")
	}
	for r := 0; r < n; r++ {
		if !transport.IsTimeout(errs[r]) {
			t.Fatalf("rank %d: want timeout, got %v", r, errs[r])
		}
		if stats[r].Aborts != 1 {
			t.Fatalf("rank %d aborts = %d, want 1", r, stats[r].Aborts)
		}
		if stats[r].Timeouts < 2 {
			t.Fatalf("rank %d timeouts = %d, want >= 2 (one per attempt)", r, stats[r].Timeouts)
		}
	}
}

// TestTimeoutWithoutRetryFailsFast: a zero RetryPolicy means one attempt —
// the first deadline expiry is final.
func TestTimeoutWithoutRetryFailsFast(t *testing.T) {
	eps := faultyGroup(t, 2, transport.FaultPlan{
		Seed:       13,
		LinkFaults: map[[2]int]transport.LinkFault{{1, 0}: {Sever: true}},
	})
	var stats OpStats
	errCh := make(chan error, 1)
	go func() {
		data := make([]float64, 16)
		errCh <- AllReduceSumOpts(eps[0], []int{0, 1}, 3, data, Options{
			Timeout: 100 * time.Millisecond,
			Stats:   &stats,
		})
	}()
	// The peer side also runs (it will fail too); we only assert rank 0.
	go func() {
		data := make([]float64, 16)
		AllReduceSumOpts(eps[1], []int{0, 1}, 3, data, Options{Timeout: 100 * time.Millisecond})
	}()
	select {
	case err := <-errCh:
		if !transport.IsTimeout(err) {
			t.Fatalf("want timeout, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("single-attempt timeout did not fire")
	}
	if stats.Retries != 0 {
		t.Fatalf("zero policy retried %d times", stats.Retries)
	}
	if stats.Aborts != 1 || stats.Timeouts != 1 {
		t.Fatalf("stats = %+v, want 1 timeout and 1 abort", stats)
	}
}

// TestBarrierAndGatherTimeout: the non-ring collectives honor deadlines too —
// a member lost behind a severed link surfaces as ErrTimeout at the waiting
// side instead of parking it forever.
func TestBarrierAndGatherTimeout(t *testing.T) {
	eps := faultyGroup(t, 2, transport.FaultPlan{
		Seed:       14,
		LinkFaults: map[[2]int]transport.LinkFault{{1, 0}: {Sever: true}},
	})
	opt := Options{Timeout: 100 * time.Millisecond}

	barrierErr := make(chan error, 1)
	go func() { barrierErr <- BarrierOpts(eps[0], []int{0, 1}, 4, opt) }()
	go func() { BarrierOpts(eps[1], []int{0, 1}, 4, opt) }()
	select {
	case err := <-barrierErr:
		if !transport.IsTimeout(err) {
			t.Fatalf("barrier: want timeout, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("barrier hung")
	}

	gatherErr := make(chan error, 1)
	go func() {
		_, err := GatherOpts(eps[0], []int{0, 1}, 5, 0, []float64{1}, opt)
		gatherErr <- err
	}()
	select {
	case err := <-gatherErr:
		if !transport.IsTimeout(err) {
			t.Fatalf("gather: want timeout, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("gather root hung on a lost member")
	}
}
