package collective

import (
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"partialreduce/internal/transport"
)

// runOpts runs AllReduceSumOpts concurrently on every member and returns the
// first error.
func runOpts(eps []*transport.Mem, group []int, opID uint32, datas [][]float64, opt Options) error {
	var wg sync.WaitGroup
	errs := make([]error, len(group))
	for i, r := range group {
		i, r := i, r
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = AllReduceSumOpts(eps[r], group, opID, datas[i], opt)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// TestQuickSegmentedBitIdentical is the tentpole determinism property:
// segmentation only changes message boundaries, never the per-element order
// of operations, so the segmented path must be *bit-identical* to the
// unsegmented one for random group shapes, vector lengths, and segment
// sizes — including sizes that leave ragged final segments and sizes larger
// than any chunk.
func TestQuickSegmentedBitIdentical(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := 2 + rng.Intn(6)
		d := 1 + rng.Intn(5000)
		seg := 1 + rng.Intn(700) // deliberately tiny: many ragged segments
		world := transport.NewMem(g)
		group := make([]int, g)
		for i := range group {
			group[i] = i
		}
		plain := make([][]float64, g)
		segged := make([][]float64, g)
		for r := range plain {
			plain[r] = make([]float64, d)
			segged[r] = make([]float64, d)
			for i := range plain[r] {
				v := rng.NormFloat64()
				plain[r][i] = v
				segged[r][i] = v
			}
		}
		if err := runOpts(world, group, 1, plain, Options{SegmentElems: -1}); err != nil {
			t.Logf("unsegmented: %v", err)
			return false
		}
		if err := runOpts(world, group, 2, segged, Options{SegmentElems: seg}); err != nil {
			t.Logf("segmented (seg=%d): %v", seg, err)
			return false
		}
		for r := range plain {
			for i := range plain[r] {
				if plain[r][i] != segged[r][i] {
					t.Logf("g=%d d=%d seg=%d rank=%d elem=%d: %g != %g",
						g, d, seg, r, i, plain[r][i], segged[r][i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestGatherSizeMismatch is the regression test for the missing length
// validation: a member whose payload disagrees with the root's expected
// per-member length must fail the gather instead of being stored silently.
func TestGatherSizeMismatch(t *testing.T) {
	eps := transport.NewMem(3)
	group := []int{0, 1, 2}
	lens := map[int]int{0: 4, 1: 2, 2: 4} // rank 1 sends a short vector
	errs := make(map[int]error)
	var wg sync.WaitGroup
	var mu sync.Mutex
	for _, r := range group {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			data := make([]float64, lens[r])
			_, err := Gather(eps[r], group, 11, 0, data)
			mu.Lock()
			errs[r] = err
			mu.Unlock()
		}()
	}
	wg.Wait()
	if errs[0] == nil {
		t.Fatal("root accepted a size-mismatched gather")
	}
	if !strings.Contains(errs[0].Error(), "size") && !strings.Contains(errs[0].Error(), "mismatch") {
		t.Fatalf("root error does not mention the mismatch: %v", errs[0])
	}
}

// TestAllReduceOpStats pins the OpStats accounting: a g-member ring moves
// 2(g−1)/g·n elements per member in each direction, phases take nonzero
// wall time, and the segment count matches the agreed geometry.
func TestAllReduceOpStats(t *testing.T) {
	const g, n, seg = 4, 1000, 64
	world := transport.NewMem(g)
	group := []int{0, 1, 2, 3}
	stats := make([]OpStats, g)
	datas := make([][]float64, g)
	var wg sync.WaitGroup
	errs := make([]error, g)
	for r := 0; r < g; r++ {
		r := r
		datas[r] = make([]float64, n)
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[r] = AllReduceSumOpts(world[r], group, 5, datas[r],
				Options{SegmentElems: seg, Stats: &stats[r]})
		}()
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}

	var total OpStats
	for r := range stats {
		s := stats[r]
		if s.Ops != 1 {
			t.Fatalf("rank %d: ops=%d", r, s.Ops)
		}
		if s.BytesSent != s.BytesRecv {
			t.Fatalf("rank %d: sent %d != recv %d (symmetric ring)", r, s.BytesSent, s.BytesRecv)
		}
		// Each member ships every chunk except its final one in each phase:
		// 2(g−1) chunks of n/g-ish elements — between 2(g−1)·floor(n/g) and
		// 2(g−1)·ceil(n/g) elements, 8 bytes each.
		lo := int64(8 * 2 * (g - 1) * (n / g))
		hi := int64(8 * 2 * (g - 1) * ((n + g - 1) / g))
		if s.BytesSent < lo || s.BytesSent > hi {
			t.Fatalf("rank %d: bytes sent %d outside [%d,%d]", r, s.BytesSent, lo, hi)
		}
		if s.Segments < 2*(g-1) {
			t.Fatalf("rank %d: only %d segments for seg=%d", r, s.Segments, seg)
		}
		if s.ReduceScatter <= 0 || s.AllGather <= 0 {
			t.Fatalf("rank %d: zero phase time %v/%v", r, s.ReduceScatter, s.AllGather)
		}
		total.Merge(s)
	}
	if total.Ops != g {
		t.Fatalf("merged ops=%d", total.Ops)
	}
	if got := total.String(); got == "" {
		t.Fatal("empty stats string")
	}
}

// TestAllReduceSteadyStateAllocFree is the CI allocation gate the issue asks
// for: after warmup, a full segmented AllReduceSum over the Mem transport
// performs zero heap allocations on the measured rank.
func TestAllReduceSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	const g, n = 4, 1 << 16
	world := transport.NewMem(g)
	group := []int{0, 1, 2, 3}

	// Peer ranks loop in the background, released once per round.
	start := make([]chan struct{}, g)
	done := make([]chan struct{}, g)
	for r := 1; r < g; r++ {
		start[r] = make(chan struct{})
		done[r] = make(chan struct{})
		r := r
		data := make([]float64, n)
		go func() {
			for range start[r] {
				_ = AllReduceSumOpts(world[r], group, 9, data, Options{})
				done[r] <- struct{}{}
			}
		}()
	}
	defer func() {
		for r := 1; r < g; r++ {
			close(start[r])
		}
	}()

	data := make([]float64, n)
	round := func() {
		for r := 1; r < g; r++ {
			start[r] <- struct{}{}
		}
		if err := AllReduceSumOpts(world[0], group, 9, data, Options{}); err != nil {
			t.Fatal(err)
		}
		for r := 1; r < g; r++ {
			<-done[r]
		}
	}
	for i := 0; i < 8; i++ {
		round() // warm every pool (buffers, waiters, kernel workers)
	}
	if allocs := testing.AllocsPerRun(20, round); allocs > 0 {
		t.Fatalf("steady-state AllReduceSum allocates %.1f times per op", allocs)
	}
}

// TestBarrierSynchronizes checks the zero-payload Barrier rewrite: no member
// may leave the barrier before the slowest member has entered it.
func TestBarrierSynchronizes(t *testing.T) {
	const g = 5
	world := transport.NewMem(g)
	group := []int{0, 1, 2, 3, 4}
	var slowestEntered atomic.Bool
	var tooEarly atomic.Bool
	var wg sync.WaitGroup
	errs := make([]error, g)
	for r := 1; r < g; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[r] = Barrier(world[r], group, 77)
			if !slowestEntered.Load() {
				tooEarly.Store(true)
			}
		}()
	}
	// Rank 0 stalls: nobody may complete the barrier yet.
	time.Sleep(20 * time.Millisecond)
	slowestEntered.Store(true)
	errs[0] = Barrier(world[0], group, 77)
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	if tooEarly.Load() {
		t.Fatal("a member left the barrier before the slowest entered")
	}
}
