package collective

import (
	"os"
	"testing"

	"partialreduce/internal/trace"
)

// BenchmarkAllReduceSumTraced is BenchmarkAllReduceSum with a live tracer
// attached: every op additionally records one collective span, two phase
// spans, and the clock reads around them. Comparing its ns/op against the
// untraced benchmark measures the tracing tax on the data plane; `make
// bench` records both into BENCH_dataplane.json and the gate below bounds
// the regression.
func BenchmarkAllReduceSumTraced(b *testing.B) {
	tr := trace.New(trace.NewWallClock(), 1<<12)
	benchRing(b, 4, 1_000_000, Options{Tracer: tr, TraceTrack: 0, TraceIter: -1})
}

// TestTraceOverheadGate bounds the tracing-enabled all-reduce throughput
// regression at <3%. Timing-sensitive, so it only runs when
// PREDUCE_TRACEGATE=1 (make bench sets it); a bare `go test` on a loaded
// machine would flake. Each variant takes the best of three trials to
// damp scheduler noise.
func TestTraceOverheadGate(t *testing.T) {
	if os.Getenv("PREDUCE_TRACEGATE") == "" {
		t.Skip("set PREDUCE_TRACEGATE=1 (make bench) to run the trace-overhead gate")
	}
	const elems = 1 << 18
	measure := func(opts Options) float64 {
		best := 0.0
		for trial := 0; trial < 3; trial++ {
			r := testing.Benchmark(func(b *testing.B) { benchRing(b, 4, elems, opts) })
			ns := float64(r.NsPerOp())
			if best == 0 || ns < best {
				best = ns
			}
		}
		return best
	}
	base := measure(Options{})
	tr := trace.New(trace.NewWallClock(), 1<<12)
	traced := measure(Options{Tracer: tr, TraceTrack: 0, TraceIter: -1})

	ratio := traced / base
	t.Logf("all-reduce ns/op: untraced=%.0f traced=%.0f ratio=%.4f", base, traced, ratio)
	if ratio > 1.03 {
		t.Fatalf("tracing overhead %.2f%% exceeds the 3%% budget (untraced %.0f ns/op, traced %.0f ns/op)",
			(ratio-1)*100, base, traced)
	}
}
