package collective

import (
	"fmt"
	"sync"
	"testing"

	"partialreduce/internal/transport"
)

// benchWorld spins up a g-rank Mem world whose non-zero ranks loop the given
// collective forever; the benchmark goroutine drives rank 0. start releases
// one round on every rank, done reports rank-0 completion.
func benchRing(b *testing.B, ranks, elems int, opts Options) {
	b.Helper()
	world := transport.NewMem(ranks)
	group := make([]int, ranks)
	data := make([][]float64, ranks)
	for i := range group {
		group[i] = i
		data[i] = make([]float64, elems)
		for j := range data[i] {
			data[i][j] = float64(i*elems + j)
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	start := make([]chan struct{}, ranks)
	for r := 1; r < ranks; r++ {
		r := r
		start[r] = make(chan struct{}, 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for op := uint32(1); ; op++ {
				select {
				case <-stop:
					return
				case <-start[r]:
				}
				if err := AllReduceSumOpts(world[r], group, op, data[r], opts); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}

	// Warm the buffer pools so the measured region sees steady state.
	warm := 3
	for w := 0; w < warm; w++ {
		for r := 1; r < ranks; r++ {
			start[r] <- struct{}{}
		}
		if err := AllReduceSumOpts(world[0], group, uint32(w+1), data[0], opts); err != nil {
			b.Fatal(err)
		}
	}

	b.SetBytes(int64(8 * elems))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 1; r < ranks; r++ {
			start[r] <- struct{}{}
		}
		op := uint32(warm + i + 1)
		if err := AllReduceSumOpts(world[0], group, op, data[0], opts); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
	for _, t := range world {
		t.Close()
	}
}

// BenchmarkAllReduceSum measures the default (segmented, pooled) ring
// all-reduce over the in-process transport: 4 ranks, a 1M-element tensor.
// The acceptance bar for the zero-alloc data plane is 0 allocs/op here in
// steady state.
func BenchmarkAllReduceSum(b *testing.B) {
	benchRing(b, 4, 1_000_000, Options{})
}

// BenchmarkRingSegmented sweeps segment sizes, including the unsegmented
// path (SegmentElems < 0) as the contrast.
func BenchmarkRingSegmented(b *testing.B) {
	for _, seg := range []int{-1, 4 << 10, 16 << 10, 64 << 10} {
		name := fmt.Sprintf("seg=%d", seg)
		if seg < 0 {
			name = "seg=off"
		}
		b.Run(name, func(b *testing.B) {
			benchRing(b, 4, 1_000_000, Options{SegmentElems: seg})
		})
	}
}
