module partialreduce

go 1.24
