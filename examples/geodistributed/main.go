// Geodistributed: the paper's communication-heterogeneity case (Case 1).
// Sixteen workers span two data centers; the link between them is an order
// of magnitude slower than the intra-DC fabric. All-Reduce rings cross the
// slow link every round. Plain P-Reduce forms random groups, most of which
// also cross it. Zone-affinity P-Reduce keeps groups inside one data center
// and lets the group filter's frozen-avoidance periodically bridge the two —
// cheap collectives almost always, connectivity always.
//
//	go run ./examples/geodistributed
package main

import (
	"fmt"
	"log"

	preduce "partialreduce"
)

func main() {
	const n = 16
	topo := preduce.GeoTopology(n, 20e-3, 1.25e9) // 20 ms, 10 GbE between DCs

	fmt.Println("16 workers in two data centers; VGG-19-class model (575 MB on the wire).")
	run := func(label string, s preduce.Strategy) *preduce.Result {
		res, err := preduce.Simulate(config(topo), s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s %s\n", label, res)
		return res
	}

	ar := run("All-Reduce", preduce.NewAllReduce())
	plain := run("P-Reduce (P=4)", preduce.NewPReduce(preduce.PReduceConfig{P: 4}))
	affinity := run("P-Reduce + zones", preduce.NewPReduce(preduce.PReduceConfig{
		P: 4, ZoneAffinity: true,
	}))

	if affinity.RunTime > 0 {
		fmt.Printf("\nzone affinity is %.1fx faster than All-Reduce and %.1fx faster than plain P-Reduce\n",
			ar.RunTime/affinity.RunTime, plain.RunTime/affinity.RunTime)
	}
}

func config(topo *preduce.Topology) preduce.SimConfig {
	ds, err := preduce.GaussianMixture(preduce.MixtureConfig{
		Classes: 10, Dim: 32, Examples: 6000,
		Separation: 3.5, Noise: 1.0, Seed: 13,
	})
	if err != nil {
		log.Fatal(err)
	}
	train, test := ds.Split(0.8)
	const n = 16
	return preduce.SimConfig{
		N:         n,
		Spec:      preduce.Spec{Inputs: 32, Hidden: []int{24}, Classes: 10},
		Seed:      13,
		Train:     train,
		Test:      test,
		BatchSize: 16,
		Optimizer: preduce.OptimizerConfig{LR: 0.03, Momentum: 0.9, WeightDecay: 1e-4},
		Profile:   preduce.VGG19,
		Hetero:    preduce.Homogeneous(n, preduce.VGG19.BatchCompute, 0.15, 13),
		Net:       preduce.DefaultNetwork(),
		Topology:  topo,
		Threshold: 0.90,
	}
}
