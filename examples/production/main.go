// Production: the paper's shared-cluster scenario (§5.3). Sixteen workers on
// a regime-switching slowdown trace train a CIFAR-100-class workload; the
// example prints both strategies' accuracy-over-time trajectories and the
// per-update-time distribution that explains the gap: All-Reduce's barrier
// inherits the slowest worker's regime, partial reduce rides the fast ones.
//
//	go run ./examples/production
package main

import (
	"fmt"
	"log"
	"sort"

	preduce "partialreduce"
)

func main() {
	arRes := run(preduce.NewAllReduce())
	dynRes := run(preduce.NewPReduce(preduce.PReduceConfig{
		P: 4, Weighting: preduce.Dynamic, Approx: preduce.ClosestIteration,
	}))

	fmt.Println("ResNet-34-class workload on a production trace, N=16:")
	fmt.Printf("  %s\n  %s\n", arRes, dynRes)
	if dynRes.RunTime > 0 && dynRes.PerUpdate() > 0 {
		fmt.Printf("\nper-update speedup: %.1fx   total speedup: %.2fx\n",
			arRes.PerUpdate()/dynRes.PerUpdate(), arRes.RunTime/dynRes.RunTime)
	}

	fmt.Println("\nupdate-interval distribution (seconds between updates):")
	for _, r := range []*preduce.Result{arRes, dynRes} {
		fmt.Printf("  %-10s %s\n", r.Strategy, histogram(intervals(r)))
	}
}

func run(s preduce.Strategy) *preduce.Result {
	ds, err := preduce.GaussianMixture(preduce.MixtureConfig{
		Classes: 100, Dim: 64, Examples: 12000,
		Separation: 4.0, Noise: 1.0, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	train, test := ds.Split(0.8)
	res, err := preduce.Simulate(preduce.SimConfig{
		N:         16,
		Spec:      preduce.Spec{Inputs: 64, Hidden: []int{48}, Classes: 100},
		Seed:      11,
		Train:     train,
		Test:      test,
		BatchSize: 24,
		Optimizer: preduce.OptimizerConfig{LR: 0.03, Momentum: 0.9, WeightDecay: 1e-4},
		Profile:   preduce.ResNet34,
		Hetero:    preduce.ProductionTrace(16, preduce.ResNet34.BatchCompute, 11),
		Net:       preduce.DefaultNetwork(),
		Threshold: 0.70,
		EvalEvery: 50,
	}, s)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

// intervals derives update intervals from the curve's (time, updates) pairs.
func intervals(r *preduce.Result) []float64 {
	var out []float64
	for i := 1; i < len(r.Curve); i++ {
		dt := r.Curve[i].Time - r.Curve[i-1].Time
		du := r.Curve[i].Updates - r.Curve[i-1].Updates
		if du > 0 {
			out = append(out, dt/float64(du))
		}
	}
	return out
}

// histogram renders quartiles of the interval distribution.
func histogram(xs []float64) string {
	if len(xs) == 0 {
		return "(no samples)"
	}
	sort.Float64s(xs)
	q := func(f float64) float64 { return xs[int(f*float64(len(xs)-1))] }
	return fmt.Sprintf("p25=%.2fs p50=%.2fs p75=%.2fs max=%.2fs",
		q(0.25), q(0.50), q(0.75), xs[len(xs)-1])
}
