// Livecluster: the real runtime, not the simulator. Six goroutine workers
// train real model replicas; a controller service forms P-Reduce groups from
// ready signals; each group executes a genuine ring all-reduce over an
// in-process transport (swap in preduce.NewTCP endpoints to span processes).
// Worker 0 is artificially slowed to show that nobody waits for it.
//
//	go run ./examples/livecluster
package main

import (
	"fmt"
	"log"
	"time"

	preduce "partialreduce"
)

func main() {
	ds, err := preduce.GaussianMixture(preduce.MixtureConfig{
		Classes: 5, Dim: 16, Examples: 3000,
		Separation: 3.2, Noise: 1.0, Seed: 23,
	})
	if err != nil {
		log.Fatal(err)
	}
	train, test := ds.Split(0.8)

	const n = 6
	cfg := preduce.LiveConfig{
		N:         n,
		P:         3,
		Spec:      preduce.Spec{Inputs: 16, Hidden: []int{20}, Classes: 5},
		Seed:      23,
		Train:     train,
		Test:      test,
		BatchSize: 16,
		Optimizer: preduce.OptimizerConfig{LR: 0.05, Momentum: 0.9},
		Weighting: preduce.Dynamic,
		Approx:    preduce.ClosestIteration,
		Iters:     150,
		// Worker 0 is a straggler: 3ms of extra latency per batch.
		ComputeDelay: func(worker, iter int) time.Duration {
			if worker == 0 {
				return 3 * time.Millisecond
			}
			return 0
		},
	}

	rep, err := preduce.RunLive(cfg, preduce.NewMemWorld(n))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("live P-Reduce on %d goroutine workers (P=%d, dynamic weights)\n", n, cfg.P)
	fmt.Printf("  final accuracy (averaged model): %.3f\n", rep.FinalAccuracy)
	fmt.Printf("  groups executed: %d   wall time: %s\n", rep.Groups, rep.WallTime.Round(time.Millisecond))
	fmt.Printf("  per-worker iterations: %v\n", rep.WorkerIters)
	fmt.Println("  (worker 0 was the straggler; the others never waited for it)")
}
