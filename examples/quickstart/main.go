// Quickstart: train a classifier with partial reduce on an 8-worker
// simulated cluster and print the run's metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	preduce "partialreduce"
)

func main() {
	// A synthetic 10-class dataset standing in for CIFAR-10.
	ds, err := preduce.GaussianMixture(preduce.MixtureConfig{
		Classes: 10, Dim: 32, Examples: 6000,
		Separation: 3.5, Noise: 1.0, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	train, test := ds.Split(0.8)

	cfg := preduce.SimConfig{
		N:         8,                                                        // workers
		Spec:      preduce.Spec{Inputs: 32, Hidden: []int{24}, Classes: 10}, // proxy model
		Seed:      42,
		Train:     train,
		Test:      test,
		BatchSize: 16,
		Optimizer: preduce.OptimizerConfig{LR: 0.03, Momentum: 0.9, WeightDecay: 1e-4},
		Profile:   preduce.ResNet34,                       // wire size + compute cost
		Hetero:    preduce.Homogeneous(8, 0.41, 0.15, 42), // per-batch seconds
		Net:       preduce.DefaultNetwork(),               // α–β cost model
		Threshold: 0.90,                                   // stop at 90% test accuracy
	}

	// Partial reduce with groups of 3 and constant 1/P weights.
	res, err := preduce.Simulate(cfg, preduce.NewPReduce(preduce.PReduceConfig{P: 3}))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("P-Reduce (P=3):", res)
	fmt.Printf("reached %.1f%% accuracy after %d partial-reduce updates "+
		"(%.1f simulated seconds, %.3fs per update)\n",
		100*res.FinalAccuracy, res.Updates, res.RunTime, res.PerUpdate())
}
