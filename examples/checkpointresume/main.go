// Checkpointresume: stop training, serialize the full state (parameters and
// optimizer momentum), and resume bit-exactly — the restored run produces
// the same trajectory as an uninterrupted one.
//
//	go run ./examples/checkpointresume
package main

import (
	"bytes"
	"fmt"
	"log"

	preduce "partialreduce"
)

func main() {
	ds, err := preduce.GaussianMixture(preduce.MixtureConfig{
		Classes: 4, Dim: 12, Examples: 2000, Separation: 3.2, Noise: 1, Seed: 77,
	})
	if err != nil {
		log.Fatal(err)
	}
	train, test := ds.Split(0.8)
	spec := preduce.Spec{Inputs: 12, Hidden: []int{16}, Classes: 4}
	optCfg := preduce.OptimizerConfig{LR: 0.05, Momentum: 0.9}

	// Reference: 200 uninterrupted steps.
	ref := newTrainer(spec, optCfg, train)
	ref.steps(200)

	// Interrupted: 120 steps, checkpoint to a buffer, rebuild everything
	// from scratch, restore, and run the remaining 80.
	first := newTrainer(spec, optCfg, train)
	first.steps(120)
	var buf bytes.Buffer
	if err := preduce.SaveCheckpoint(&buf, first.m, first.opt, 120); err != nil {
		log.Fatal(err)
	}

	resumed := newTrainer(spec, optCfg, train)
	ck, err := preduce.LoadCheckpoint(&buf, resumed.m, resumed.opt)
	if err != nil {
		log.Fatal(err)
	}
	resumed.sampler = first.sampler // keep the data stream position
	resumed.steps(80)

	same := true
	for i, v := range ref.m.Params() {
		if resumed.m.Params()[i] != v {
			same = false
			break
		}
	}
	fmt.Printf("checkpoint taken at iteration %d\n", ck.Iter)
	fmt.Printf("resumed trajectory identical to uninterrupted run: %v\n", same)
	fmt.Printf("final test accuracy: %.3f\n", preduce.Accuracy(resumed.m, test))
}

type trainer struct {
	m       preduce.Model
	opt     *preduce.SGD
	sampler *preduce.Sampler
	batch   *preduce.Batch
	grad    []float64
}

func newTrainer(spec preduce.Spec, cfg preduce.OptimizerConfig, train *preduce.Dataset) *trainer {
	m := spec.Build(77)
	return &trainer{
		m:       m,
		opt:     preduce.NewSGD(cfg, m.NumParams()),
		sampler: preduce.NewSampler(train, 5),
		grad:    make([]float64, m.NumParams()),
	}
}

func (t *trainer) steps(k int) {
	for i := 0; i < k; i++ {
		t.batch = t.sampler.Sample(t.batch, 16)
		t.m.Gradient(t.grad, t.batch)
		t.opt.Update(t.m.Params(), t.grad, 1)
	}
}
