// Heterogeneous: the paper's motivating scenario. Sweep the heterogeneity
// level (workers sharing one GPU) and compare All-Reduce against constant
// and dynamic partial reduce — All-Reduce's barrier pays for every
// straggler, partial reduce does not.
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"

	preduce "partialreduce"
)

func main() {
	fmt.Println("VGG-19-class workload, 8 workers; HL workers share one GPU.")
	fmt.Printf("%4s %14s %14s %14s\n", "HL", "AR", "CON P=3", "DYN P=3")

	for _, hl := range []int{1, 2, 3, 4} {
		times := make([]float64, 0, 3)
		for _, s := range []preduce.Strategy{
			preduce.NewAllReduce(),
			preduce.NewPReduce(preduce.PReduceConfig{P: 3}),
			preduce.NewPReduce(preduce.PReduceConfig{
				P: 3, Weighting: preduce.Dynamic, Approx: preduce.ClosestIteration,
			}),
		} {
			res, err := preduce.Simulate(config(hl), s)
			if err != nil {
				log.Fatal(err)
			}
			if res.Converged {
				times = append(times, res.RunTime)
			} else {
				times = append(times, -1)
			}
		}
		fmt.Printf("%4d", hl)
		for _, t := range times {
			if t < 0 {
				fmt.Printf(" %14s", "N/A")
			} else {
				fmt.Printf(" %13.0fs", t)
			}
		}
		fmt.Println()
	}
	fmt.Println("\nAll-Reduce degrades with HL; partial reduce barely moves.")
}

func config(hl int) preduce.SimConfig {
	ds, err := preduce.GaussianMixture(preduce.MixtureConfig{
		Classes: 10, Dim: 32, Examples: 6000,
		Separation: 3.5, Noise: 1.0, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	train, test := ds.Split(0.8)
	return preduce.SimConfig{
		N:         8,
		Spec:      preduce.Spec{Inputs: 32, Hidden: []int{24}, Classes: 10},
		Seed:      7,
		Train:     train,
		Test:      test,
		BatchSize: 16,
		Optimizer: preduce.OptimizerConfig{LR: 0.03, Momentum: 0.9, WeightDecay: 1e-4},
		Profile:   preduce.VGG19,
		Hetero:    preduce.GPUSharing(8, hl, preduce.VGG19.BatchCompute, 0.15, 7),
		Net:       preduce.DefaultNetwork(),
		Threshold: 0.90,
	}
}
